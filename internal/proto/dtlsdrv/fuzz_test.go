package dtlsdrv

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// FuzzDTLSProbe checks the DTLS prober's invariants on arbitrary
// payloads: Match never panics, a match consumes the whole candidate
// (DTLS records fill their datagram), the decoded record chain is
// non-empty, and Comply judges every record without panicking.
func FuzzDTLSProbe(f *testing.F) {
	var random [32]byte
	ch := tlsinspect.BuildDTLSHandshake(tlsinspect.DTLSHandshakeClientHello, 0,
		tlsinspect.BuildDTLSClientHelloBody(random, nil))
	hello := tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeHandshake, tlsinspect.VersionDTLS12, 0, 0, ch)
	ccs := tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeChangeCipherSpec, tlsinspect.VersionDTLS12, 0, 5, []byte{1})
	f.Add(hello)
	f.Add(ccs)
	f.Add(tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeAlert, tlsinspect.VersionDTLS10, 0, 1, []byte{1, 0}))
	f.Add(tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeApplicationData, tlsinspect.VersionDTLS12, 1, 9,
		bytes.Repeat([]byte{0x5a}, 48)))
	chain := append(append([]byte(nil), ccs...),
		tlsinspect.BuildDTLSRecord(tlsinspect.DTLSTypeHandshake, tlsinspect.VersionDTLS12, 1, 6,
			bytes.Repeat([]byte{0x7f}, 40))...)
	f.Add(chain)
	f.Add(hello[:len(hello)-4]) // truncated final record: must not match
	f.Add([]byte{0x16, 0xfe, 0xfd})

	f.Fuzz(func(t *testing.T, data []byte) {
		var st proto.StreamState
		m, ok := Match(proto.Candidate{Payload: data}, &st)
		if !ok {
			return
		}
		if m.Length != len(data) {
			t.Fatalf("match consumed %d of %d bytes; DTLS records must fill the datagram", m.Length, len(data))
		}
		recs, isRecs := m.Body.([]tlsinspect.DTLSRecord)
		if !isRecs || len(recs) == 0 {
			t.Fatalf("match carries no record chain: %T", m.Body)
		}
		s := proto.NewChecker(proto.Default()).NewSession()
		checked := handler{}.Comply(nil, m, time.Unix(0, 0), s)
		if len(checked) != len(recs) {
			t.Fatalf("Comply judged %d records, chain has %d", len(checked), len(recs))
		}
	})
}
