package trace

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

var t0 = time.Unix(1700000000, 0).UTC()

func testConfig() CaptureConfig {
	return CaptureConfig{
		App:          appsim.WhatsApp,
		Network:      appsim.WiFiRelay,
		Seed:         5,
		Start:        t0,
		CallDuration: 6 * time.Second,
		PrePost:      10 * time.Second,
		MediaRate:    15,
		Background:   true,
	}
}

func TestGenerateCapture(t *testing.T) {
	cap, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Events) <= cap.RTCEvents {
		t.Errorf("background events missing: total %d, rtc %d", len(cap.Events), cap.RTCEvents)
	}
	if !cap.CallStart.Equal(t0) || !cap.CallEnd.Equal(t0.Add(6*time.Second)) {
		t.Errorf("call window = %v..%v", cap.CallStart, cap.CallEnd)
	}
	for i := 1; i < len(cap.Events); i++ {
		if cap.Events[i].At.Before(cap.Events[i-1].At) {
			t.Fatal("events not sorted")
		}
	}
	// Some events precede the call window (background pre-call phase).
	if !cap.Events[0].At.Before(cap.CallStart) {
		t.Error("no pre-call events")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := testConfig()
	cfg.CallDuration = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = testConfig()
	cfg.PrePost = -time.Second
	if _, err := Generate(cfg); err == nil {
		t.Error("negative prepost accepted")
	}
}

func TestFramesDecode(t *testing.T) {
	cap, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()
	if len(frames) != len(cap.Events) {
		t.Fatalf("frames = %d, events = %d", len(frames), len(cap.Events))
	}
	for i, f := range frames {
		pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		ev := cap.Events[i]
		proto, sp, dp := pkt.Transport()
		if proto != ev.Proto || sp != ev.Src.Port() || dp != ev.Dst.Port() {
			t.Fatalf("frame %d transport mismatch", i)
		}
		if !bytes.Equal(pkt.Payload, ev.Payload) {
			t.Fatalf("frame %d payload mismatch", i)
		}
		if pkt.Src() != ev.Src.Addr() || pkt.Dst() != ev.Dst.Addr() {
			t.Fatalf("frame %d address mismatch", i)
		}
	}
}

func TestWritePCAPRoundTrip(t *testing.T) {
	cap, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != pcap.LinkTypeRaw {
		t.Errorf("link type = %v", r.LinkType())
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(cap.Events) {
		t.Fatalf("pcap packets = %d, want %d", len(pkts), len(cap.Events))
	}
	// Timestamps survive with microsecond precision.
	for i := range pkts {
		want := cap.Events[i].At.Truncate(time.Microsecond)
		if !pkts[i].Timestamp.Equal(want) {
			t.Fatalf("packet %d ts = %v, want %v", i, pkts[i].Timestamp, want)
		}
	}
}

func TestMatrix(t *testing.T) {
	configs := Matrix(MatrixOptions{
		Runs:         2,
		CallDuration: 5 * time.Second,
		PrePost:      3 * time.Second,
		Start:        t0,
		BaseSeed:     100,
	})
	if len(configs) != 6*3*2 {
		t.Fatalf("matrix size = %d, want 36", len(configs))
	}
	// Windows must not overlap and seeds must be unique.
	seeds := make(map[uint64]bool)
	for i, c := range configs {
		if seeds[c.Seed] {
			t.Fatalf("duplicate seed %d", c.Seed)
		}
		seeds[c.Seed] = true
		if i > 0 {
			prev := configs[i-1]
			prevEnd := prev.Start.Add(prev.CallDuration + prev.PrePost)
			if c.Start.Add(-c.PrePost).Before(prevEnd) {
				t.Fatalf("capture %d overlaps previous", i)
			}
		}
	}
	// Restricting apps shrinks the matrix.
	small := Matrix(MatrixOptions{
		Runs: 1, CallDuration: time.Second, Start: t0,
		Apps: []appsim.App{appsim.Zoom},
	})
	if len(small) != 3 {
		t.Fatalf("restricted matrix = %d, want 3", len(small))
	}
}

func TestTCPSequenceNumbersAdvance(t *testing.T) {
	cap, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	frames := cap.Frames()
	lastSeq := make(map[string]uint32)
	sawAdvance := false
	for _, f := range frames {
		pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
		if err != nil || pkt.TCP == nil {
			continue
		}
		key := pkt.Src().String() + "->" + pkt.Dst().String()
		if prev, ok := lastSeq[key]; ok && pkt.TCP.Seq > prev {
			sawAdvance = true
		}
		lastSeq[key] = pkt.TCP.Seq
	}
	if !sawAdvance {
		t.Error("TCP sequence numbers never advance")
	}
}
