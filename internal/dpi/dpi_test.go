package dpi

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

func rtpPacket(ssrc uint32, seq uint16, payload []byte) []byte {
	p := &rtp.Packet{PayloadType: 111, SequenceNumber: seq, Timestamp: uint32(seq) * 960, SSRC: ssrc, Payload: payload}
	return p.Encode()
}

func TestStandardSTUNDatagram(t *testing.T) {
	r := ice.NewRand(1)
	msg := ice.ServerBindingRequest(r)
	res := NewEngine().Inspect(msg.Raw, nil)
	if res.Class != ClassStandard {
		t.Fatalf("class = %v", res.Class)
	}
	if len(res.Messages) != 1 || res.Messages[0].Protocol != ProtoSTUN {
		t.Fatalf("messages = %+v", res.Messages)
	}
	if res.Messages[0].STUN.Type != stun.TypeBindingRequest {
		t.Errorf("type = %v", res.Messages[0].STUN.Type)
	}
	if res.Messages[0].Length != len(msg.Raw) {
		t.Errorf("length = %d, want %d", res.Messages[0].Length, len(msg.Raw))
	}
}

func TestUndefinedSTUNTypeStillExtracted(t *testing.T) {
	// WhatsApp's 0x0801 with undefined attributes and magic cookie.
	m := &stun.Message{Type: stun.MessageType(0x0801)}
	m.Add(stun.AttrType(0x4003), []byte{0xff})
	m.Add(stun.AttrType(0x4004), make([]byte, 440))
	raw := m.Encode()
	res := NewEngine().Inspect(raw, nil)
	if res.Class != ClassStandard || len(res.Messages) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Messages[0].STUN.Type != stun.MessageType(0x0801) {
		t.Errorf("type = %v", res.Messages[0].STUN.Type)
	}
}

func TestClassicSTUNExactLength(t *testing.T) {
	// Zoom's RFC 3489 Binding Request with undefined attribute 0x0101.
	m := &stun.Message{Type: stun.TypeBindingRequest, Classic: true, CookieWord: 0x12345678}
	m.Add(stun.AttrType(0x0101), bytes.Repeat([]byte("1234567890"), 2))
	raw := m.Encode()
	res := NewEngine().Inspect(raw, nil)
	if res.Class != ClassStandard || len(res.Messages) != 1 {
		t.Fatalf("classic STUN not extracted: %+v", res)
	}
	if !res.Messages[0].STUN.Classic {
		t.Error("not flagged classic")
	}
	// With trailing junk the exact-length rule rejects it.
	res2 := NewEngine().Inspect(append(append([]byte{}, raw...), 0xde, 0xad, 0xbe, 0xef), nil)
	if res2.Class == ClassStandard && len(res2.Messages) > 0 && res2.Messages[0].Protocol == ProtoSTUN {
		t.Error("classic STUN with trailing junk accepted at offset 0")
	}
}

func TestRTPStream(t *testing.T) {
	ctx := NewStreamContext()
	e := NewEngine()
	for seq := uint16(100); seq < 110; seq++ {
		res := e.Inspect(rtpPacket(0xabc, seq, []byte("media")), ctx)
		if res.Class != ClassStandard || len(res.Messages) != 1 || res.Messages[0].Protocol != ProtoRTP {
			t.Fatalf("seq %d: %+v", seq, res)
		}
	}
	// A wild sequence jump on a known SSRC is rejected.
	res := e.Inspect(rtpPacket(0xabc, 40000, []byte("x")), ctx)
	if res.Class == ClassStandard {
		t.Error("wild sequence jump accepted")
	}
}

func TestRTPSequenceWraparound(t *testing.T) {
	ctx := NewStreamContext()
	e := NewEngine()
	p1 := &rtp.Packet{PayloadType: 111, SequenceNumber: 0xffff, Timestamp: 1000, SSRC: 1, Payload: []byte("x")}
	p2 := &rtp.Packet{PayloadType: 111, SequenceNumber: 0, Timestamp: 1960, SSRC: 1, Payload: []byte("x")}
	e.Inspect(p1.Encode(), ctx)
	res := e.Inspect(p2.Encode(), ctx)
	if res.Class != ClassStandard {
		t.Error("wraparound rejected")
	}
	// An implausible timestamp jump on a known SSRC is rejected even
	// with a plausible sequence number.
	p3 := &rtp.Packet{PayloadType: 111, SequenceNumber: 1, Timestamp: 1960 + 1<<24, SSRC: 1, Payload: []byte("x")}
	if res := e.Inspect(p3.Encode(), ctx); res.Class == ClassStandard {
		t.Error("timestamp jump accepted")
	}
}

func TestRTCPNotMisparsedAsRTP(t *testing.T) {
	sr := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 1, Info: rtcp.SenderInfo{NTPTimestamp: 1}})
	res := NewEngine().Inspect(sr, nil)
	if len(res.Messages) != 1 || res.Messages[0].Protocol != ProtoRTCP {
		t.Fatalf("messages = %+v", res.Messages)
	}
}

func TestRTCPCompoundWithTrailer(t *testing.T) {
	comp := rtcp.Compound(
		rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 5}),
		rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: 5, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "x@y"}}}}}),
	)
	comp = append(comp, 0x80) // Discord direction byte
	res := NewEngine().Inspect(comp, nil)
	if res.Class != ClassStandard || len(res.Messages) != 1 {
		t.Fatalf("res = %+v", res)
	}
	m := res.Messages[0]
	if len(m.RTCP) != 2 || !bytes.Equal(m.RTCPTrailing, []byte{0x80}) {
		t.Errorf("rtcp = %d pkts, trailing %v", len(m.RTCP), m.RTCPTrailing)
	}
	if m.Length != len(comp) {
		t.Errorf("length = %d, want %d", m.Length, len(comp))
	}
}

func TestChannelDataExtracted(t *testing.T) {
	inner := rtpPacket(9, 1, []byte("media"))
	cd := &stun.ChannelData{ChannelNumber: 0x4001, Data: inner}
	res := NewEngine().Inspect(cd.Encode(), nil)
	if res.Class != ClassStandard || len(res.Messages) != 1 || res.Messages[0].Protocol != ProtoChannelData {
		t.Fatalf("res = %+v", res)
	}
	if res.Messages[0].ChannelData.ChannelNumber != 0x4001 {
		t.Error("channel number wrong")
	}
}

func TestFaceTime6000HeaderNotChannelData(t *testing.T) {
	// FaceTime's relay header: 0x6000, 2-byte length of remaining header
	// + message, then opaque header bytes, then RTP.
	inner := rtpPacket(7, 42, bytes.Repeat([]byte{0xee}, 50))
	hdrRest := []byte{0xa1, 0xb2, 0xc3, 0xd4} // opaque fields
	payload := []byte{0x60, 0x00}
	payload = append(payload, byte((len(hdrRest)+len(inner))>>8), byte(len(hdrRest)+len(inner)))
	payload = append(payload, hdrRest...)
	payload = append(payload, inner...)

	res := NewEngine().Inspect(payload, nil)
	if res.Class != ClassProprietaryHeader {
		t.Fatalf("class = %v, want proprietary header", res.Class)
	}
	if len(res.Messages) != 1 || res.Messages[0].Protocol != ProtoRTP {
		t.Fatalf("messages = %+v", res.Messages)
	}
	if res.Messages[0].Offset != 8 {
		t.Errorf("offset = %d, want 8", res.Messages[0].Offset)
	}
	if len(res.ProprietaryHeader) != 8 {
		t.Errorf("header = %x", res.ProprietaryHeader)
	}
}

func TestZoomStyleProprietaryHeader(t *testing.T) {
	// A Zoom-like header: direction byte, opaque SFU section with a
	// 4-byte media ID, media-type byte, then RTP.
	inner := rtpPacket(0x1000401, 7, bytes.Repeat([]byte{3}, 200))
	hdr := []byte{0x00, 0x0f, 0x99, 0x88, 0x77, 0x66, 0x0f, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55}
	payload := append(append([]byte{}, hdr...), inner...)
	res := NewEngine().Inspect(payload, nil)
	if res.Class != ClassProprietaryHeader {
		t.Fatalf("class = %v", res.Class)
	}
	if res.Messages[0].Offset != len(hdr) || res.Messages[0].Protocol != ProtoRTP {
		t.Fatalf("messages = %+v", res.Messages)
	}
}

func TestZoomDoubleRTPSplit(t *testing.T) {
	ctx := NewStreamContext()
	e := NewEngine()
	// Prime the stream with the SSRC.
	e.Inspect(rtpPacket(0x1000401, 99, bytes.Repeat([]byte{1}, 100)), ctx)
	// Datagram with two RTP messages: 7-byte payload then a large one.
	first := &rtp.Packet{PayloadType: 110, SequenceNumber: 100, Timestamp: 5000, SSRC: 0x1000401, Payload: bytes.Repeat([]byte{0xaa}, 7)}
	second := &rtp.Packet{PayloadType: 110, SequenceNumber: 101, Timestamp: 5000, SSRC: 0x1000401, Payload: bytes.Repeat([]byte{0xbb}, 400)}
	payload := append(first.Encode(), second.Encode()...)
	res := e.Inspect(payload, ctx)
	if res.Class != ClassStandard {
		t.Fatalf("class = %v", res.Class)
	}
	if len(res.Messages) != 2 {
		t.Fatalf("messages = %d, want 2", len(res.Messages))
	}
	m0, m1 := res.Messages[0], res.Messages[1]
	if m0.RTP.SequenceNumber != 100 || len(m0.RTP.Payload) != 7 {
		t.Errorf("first = seq %d, %d payload bytes", m0.RTP.SequenceNumber, len(m0.RTP.Payload))
	}
	if m1.RTP.SequenceNumber != 101 || len(m1.RTP.Payload) != 400 {
		t.Errorf("second = seq %d, %d payload bytes", m1.RTP.SequenceNumber, len(m1.RTP.Payload))
	}
}

func TestQUICLongAndShort(t *testing.T) {
	ctx := NewStreamContext()
	e := NewEngine()
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	long := quicwire.BuildLong(quicwire.TypeInitial, quicwire.Version1, dcid, []byte{9}, nil, bytes.Repeat([]byte{0}, 1100))
	res := e.Inspect(long, ctx)
	if res.Class != ClassStandard || res.Messages[0].Protocol != ProtoQUIC {
		t.Fatalf("long: %+v", res)
	}
	// Short header with a known DCID now matches.
	short := quicwire.BuildShort(dcid, bytes.Repeat([]byte{7}, 100))
	res2 := e.Inspect(short, ctx)
	if res2.Class != ClassStandard || len(res2.Messages) != 1 || res2.Messages[0].Protocol != ProtoQUIC {
		t.Fatalf("short: %+v", res2)
	}
	// Short header with unknown DCID does not match.
	unknown := quicwire.BuildShort([]byte{8, 8, 8, 8, 8, 8, 8, 8}, []byte("x"))
	res3 := e.Inspect(unknown, ctx)
	if res3.Class != ClassFullyProprietary {
		t.Errorf("unknown DCID: %+v", res3)
	}
	// Without context, short headers never match.
	res4 := e.Inspect(short, nil)
	if res4.Class != ClassFullyProprietary {
		t.Errorf("no ctx: %+v", res4)
	}
}

func TestFullyProprietary(t *testing.T) {
	fillers := [][]byte{
		bytes.Repeat([]byte{0x01}, 1000), // Zoom filler
		bytes.Repeat([]byte{0x02}, 1000),
		append([]byte{0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe}, bytes.Repeat([]byte{0}, 30)...), // FaceTime keepalive
	}
	e := NewEngine()
	for i, f := range fillers {
		res := e.Inspect(f, nil)
		if res.Class != ClassFullyProprietary {
			t.Errorf("filler %d: class = %v, messages = %+v", i, res.Class, res.Messages)
		}
	}
}

func TestMaxOffsetLimit(t *testing.T) {
	inner := rtpPacket(3, 9, []byte("x"))
	deep := append(bytes.Repeat([]byte{0xff}, 300), inner...)
	e := NewEngine() // k=200
	if res := e.Inspect(deep, nil); res.Class != ClassFullyProprietary {
		t.Errorf("k=200 found message at offset 300: %+v", res)
	}
	e2 := &Engine{MaxOffset: 400}
	if res := e2.Inspect(deep, nil); res.Class != ClassProprietaryHeader {
		t.Errorf("k=400 missed message at offset 300: %+v", res)
	}
}

func TestProtocolFilter(t *testing.T) {
	e := &Engine{MaxOffset: 200, Protocols: []Protocol{ProtoSTUN}}
	res := e.Inspect(rtpPacket(1, 1, []byte("x")), nil)
	if res.Class != ClassFullyProprietary {
		t.Errorf("RTP matched with STUN-only filter: %+v", res)
	}
}

func TestFamilyAndStrings(t *testing.T) {
	if ProtoChannelData.Family() != ProtoSTUN || ProtoRTP.Family() != ProtoRTP {
		t.Error("Family wrong")
	}
	if ProtoSTUN.String() != "STUN/TURN" || ProtoChannelData.String() != "ChannelData" ||
		ProtoQUIC.String() != "QUIC" || ProtoUnknown.String() != "unknown" {
		t.Error("protocol strings wrong")
	}
	if ClassStandard.String() != "standard" || ClassProprietaryHeader.String() != "proprietary header" ||
		ClassFullyProprietary.String() != "fully proprietary" {
		t.Error("class strings wrong")
	}
}

// Property: Inspect never panics, message spans never overlap, stay in
// bounds, and appear in increasing offset order.
func TestQuickInspectInvariants(t *testing.T) {
	e := NewEngine()
	f := func(payload []byte) bool {
		res := e.Inspect(payload, nil)
		end := 0
		for _, m := range res.Messages {
			if m.Offset < end || m.Length <= 0 || m.Offset+m.Length > len(payload) {
				return false
			}
			end = m.Offset + m.Length
		}
		switch res.Class {
		case ClassStandard:
			return len(res.Messages) > 0 && res.Messages[0].Offset == 0
		case ClassProprietaryHeader:
			return len(res.Messages) > 0 && res.Messages[0].Offset > 0 &&
				len(res.ProprietaryHeader) == res.Messages[0].Offset
		default:
			return len(res.Messages) == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a valid RTP packet embedded at any offset <= k behind random
// non-matching prefix bytes is found.
func TestQuickEmbeddedRTPFound(t *testing.T) {
	e := NewEngine()
	f := func(depth uint8, ssrc uint32, seq uint16) bool {
		d := int(depth) % 150
		prefix := bytes.Repeat([]byte{0x01}, d) // never matches anything
		pkt := rtpPacket(ssrc, seq, []byte("payload"))
		res := e.Inspect(append(prefix, pkt...), nil)
		if d == 0 {
			return res.Class == ClassStandard
		}
		return res.Class == ClassProprietaryHeader && res.Messages[0].Offset == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInspectEmptyPayload(t *testing.T) {
	res := NewEngine().Inspect(nil, nil)
	if res.Class != ClassFullyProprietary || len(res.Messages) != 0 {
		t.Errorf("empty payload: %+v", res)
	}
}
