// Package alert is the daemon's alerting tier: declarative rules
// evaluated against every compliance trend point, with per-app firing
// state, debounce (a rule must breach `for_points` consecutive points
// before it fires) and hysteresis (it must clear `clear_points`
// consecutive points before it resolves), fanned out to log, webhook,
// and exec sinks with delivery retry.
//
// Two rule types cover the pipeline's two observability axes:
//
//   - compliance_drop watches the message-type compliance rate
//     (TypesCompliant/TypesTotal): it breaches when the rate falls
//     below an absolute floor (`min`) or drops by at least `drop` from
//     the rule's reference rate — the last non-breaching rate seen for
//     that app. The reference freezes while breaching, so a persistent
//     regression keeps comparing against the pre-drop baseline instead
//     of chasing the degraded rate downward.
//
//   - qoe_floor watches one field of the trend point's header-free QoE
//     summary (internal/qoe): it breaches when the field falls below
//     `min` or rises above `max`. Points without a QoE summary are
//     skipped, not treated as breaches.
//
// The engine is deliberately an epoch-rate evaluator, not a streaming
// one: the daemon hands it exactly the points it appends to the trend
// store, so alert state is reproducible from the persisted series.
package alert

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/qoe"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

// Rule types.
const (
	TypeComplianceDrop = "compliance_drop"
	TypeQoEFloor       = "qoe_floor"
)

// Rule is one declarative alert rule. The JSON tags are the pipeline
// config schema (rules live under `alerts.rules.<name>` in the daemon
// config; the map key becomes Name).
type Rule struct {
	// Name identifies the rule; set from the config map key.
	Name string `json:"-"`
	// Type selects the evaluator: compliance_drop or qoe_floor.
	Type string `json:"type"`
	// App restricts the rule to one application label; empty evaluates
	// every app, with independent firing state per app.
	App string `json:"app,omitempty"`
	// Drop (compliance_drop) breaches when the rate fell at least this
	// far below the rule's per-app reference rate (0 < drop <= 1).
	Drop *float64 `json:"drop,omitempty"`
	// Min breaches when the watched value falls below it; Max
	// (qoe_floor only) when it rises above it.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Field (qoe_floor) names the QoE summary field to watch; see
	// qoe.Fields.
	Field string `json:"field,omitempty"`
	// ForPoints is the debounce: consecutive breaching points required
	// before the rule fires. Zero means 1 (fire on the first breach).
	ForPoints int `json:"for_points,omitempty"`
	// ClearPoints is the hysteresis: consecutive clear points required
	// before a firing rule resolves. Zero means 1.
	ClearPoints int `json:"clear_points,omitempty"`
}

// forPoints and clearPoints resolve the defaults.
func (r Rule) forPoints() int {
	if r.ForPoints <= 0 {
		return 1
	}
	return r.ForPoints
}

func (r Rule) clearPoints() int {
	if r.ClearPoints <= 0 {
		return 1
	}
	return r.ClearPoints
}

// Validate rejects malformed rules with actionable messages.
func (r Rule) Validate() error {
	switch r.Type {
	case TypeComplianceDrop:
		if r.Drop == nil && r.Min == nil {
			return fmt.Errorf("alert: rule %q: compliance_drop needs \"drop\" (regression vs reference) or \"min\" (absolute floor)", r.Name)
		}
		if r.Drop != nil && (*r.Drop <= 0 || *r.Drop > 1) {
			return fmt.Errorf("alert: rule %q: drop must be in (0, 1], got %v", r.Name, *r.Drop)
		}
		if r.Min != nil && (*r.Min < 0 || *r.Min > 1) {
			return fmt.Errorf("alert: rule %q: min must be in [0, 1], got %v", r.Name, *r.Min)
		}
		if r.Max != nil {
			return fmt.Errorf("alert: rule %q: max is a qoe_floor knob", r.Name)
		}
		if r.Field != "" {
			return fmt.Errorf("alert: rule %q: field is a qoe_floor knob", r.Name)
		}
	case TypeQoEFloor:
		if r.Field == "" {
			return fmt.Errorf("alert: rule %q: qoe_floor needs \"field\" (one of %v)", r.Name, qoe.Fields)
		}
		if !qoe.ValidField(r.Field) {
			return fmt.Errorf("alert: rule %q: unknown QoE field %q (one of %v)", r.Name, r.Field, qoe.Fields)
		}
		if r.Min == nil && r.Max == nil {
			return fmt.Errorf("alert: rule %q: qoe_floor needs \"min\" and/or \"max\"", r.Name)
		}
		if r.Drop != nil {
			return fmt.Errorf("alert: rule %q: drop is a compliance_drop knob", r.Name)
		}
	case "":
		return fmt.Errorf("alert: rule %q: missing type (compliance_drop or qoe_floor)", r.Name)
	default:
		return fmt.Errorf("alert: rule %q: unknown type %q (compliance_drop or qoe_floor)", r.Name, r.Type)
	}
	if r.ForPoints < 0 || r.ClearPoints < 0 {
		return fmt.Errorf("alert: rule %q: for_points and clear_points must be >= 0", r.Name)
	}
	return nil
}

// Event is one alert transition, delivered to every sink.
type Event struct {
	// Kind is "fire" or "resolve".
	Kind string `json:"kind"`
	// Rule, Type, and App identify the transitioned state.
	Rule string `json:"rule"`
	Type string `json:"type"`
	App  string `json:"app"`
	// Time is the trend point's timestamp (not wall clock at delivery).
	Time time.Time `json:"ts"`
	// Value is the watched value at the transition; Reference is the
	// compliance_drop baseline it was compared against (0 when the
	// breach came from the absolute floor alone).
	Value     float64 `json:"value"`
	Reference float64 `json:"reference,omitempty"`
	// Message is the human-readable one-liner the log sink prints.
	Message string `json:"message"`
}

// state is one (rule, app) pair's firing state. It survives SIGHUP
// rule swaps (Engine.Swap carries it over by rule name), so a reload
// cannot double-fire or forget an active alert.
type state struct {
	firing bool
	breach int // consecutive breaching points
	clear  int // consecutive clear points while firing
	ref    float64
	refOK  bool
	since  time.Time // first breach of the current episode
	value  float64   // last watched value
	eval   time.Time // last evaluated point
	fires  uint64
}

type stateKey struct{ rule, app string }

// Engine evaluates rules against trend points and tracks firing state.
// Safe for concurrent use (the daemon observes while HTTP reads).
type Engine struct {
	mu     sync.Mutex
	rules  []Rule
	states map[stateKey]*state

	evaluated  *metrics.Counter
	fired      *metrics.Counter
	resolved   *metrics.Counter
	suppressed *metrics.Counter
	firing     *metrics.Gauge
}

// NewEngine builds an engine over rules (sorted by name for
// deterministic evaluation and snapshot order). reg may be nil.
func NewEngine(rules []Rule, reg *metrics.Registry) *Engine {
	e := &Engine{states: make(map[stateKey]*state)}
	e.setRules(rules)
	// A nil registry yields nil instruments whose methods no-op.
	e.evaluated = reg.Counter("alerts_evaluated_total")
	e.fired = reg.Counter("alerts_fired_total")
	e.resolved = reg.Counter("alerts_resolved_total")
	e.suppressed = reg.Counter("alerts_suppressed_total")
	e.firing = reg.Gauge("alerts_firing")
	return e
}

func (e *Engine) setRules(rules []Rule) {
	e.rules = append([]Rule(nil), rules...)
	sort.Slice(e.rules, func(i, j int) bool { return e.rules[i].Name < e.rules[j].Name })
}

// Swap replaces the rule set, preserving the firing/debounce state of
// every rule that still exists (matched by name) and dropping the
// state of removed rules — the SIGHUP reload contract.
func (e *Engine) Swap(rules []Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setRules(rules)
	keep := make(map[string]bool, len(rules))
	for _, r := range e.rules {
		keep[r.Name] = true
	}
	for k := range e.states {
		if !keep[k.rule] {
			delete(e.states, k)
		}
	}
	e.updateFiringGauge()
}

// Observe evaluates every rule against one trend point and returns the
// transitions (fires and resolves) it caused, in rule-name order.
func (e *Engine) Observe(p trend.Point) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	var events []Event
	for _, r := range e.rules {
		if r.App != "" && r.App != p.App {
			continue
		}
		value, ok := watchedValue(r, p)
		if !ok {
			continue // no evidence for this rule on this point
		}
		e.evaluated.Inc()
		st := e.states[stateKey{r.Name, p.App}]
		if st == nil {
			st = &state{}
			e.states[stateKey{r.Name, p.App}] = st
		}
		st.value, st.eval = value, p.Time
		breach, ref := breaches(r, st, value)
		if breach {
			st.breach++
			st.clear = 0
			if st.breach == 1 {
				st.since = p.Time
			}
			switch {
			case !st.firing && st.breach >= r.forPoints():
				st.firing = true
				st.fires++
				e.fired.Inc()
				events = append(events, transition("fire", r, p, value, ref))
			case st.firing:
				// Still breaching while firing: debounced, no re-fire.
				e.suppressed.Inc()
			}
		} else {
			st.breach = 0
			if r.Type == TypeComplianceDrop {
				st.ref, st.refOK = value, true
			}
			if st.firing {
				st.clear++
				if st.clear >= r.clearPoints() {
					st.firing = false
					st.clear = 0
					e.resolved.Inc()
					events = append(events, transition("resolve", r, p, value, ref))
				}
			}
		}
	}
	e.updateFiringGauge()
	return events
}

// watchedValue extracts the rule's watched value from one point. ok is
// false when the point carries no evidence for the rule (no judged
// types, no QoE summary, or an unknown field) — such points are
// skipped entirely: they neither breach nor clear.
func watchedValue(r Rule, p trend.Point) (float64, bool) {
	switch r.Type {
	case TypeComplianceDrop:
		if p.TypesTotal == 0 {
			return 0, false
		}
		return float64(p.TypesCompliant) / float64(p.TypesTotal), true
	case TypeQoEFloor:
		return p.QoE.Field(r.Field)
	}
	return 0, false
}

// breaches applies the rule's thresholds to the watched value. For
// compliance_drop the regression check compares against the state's
// reference — the last non-breaching rate — which Observe refreshes
// only on clear points, so a persistent regression keeps breaching
// against the pre-drop baseline. ref reports the reference a
// drop-triggered breach compared against (0 otherwise).
func breaches(r Rule, st *state, value float64) (breach bool, ref float64) {
	if r.Min != nil && value < *r.Min {
		breach = true
	}
	switch r.Type {
	case TypeComplianceDrop:
		if r.Drop != nil && st.refOK && st.ref-value >= *r.Drop {
			breach = true
			ref = st.ref
		}
	case TypeQoEFloor:
		if r.Max != nil && value > *r.Max {
			breach = true
		}
	}
	return breach, ref
}

func transition(kind string, r Rule, p trend.Point, value, ref float64) Event {
	ev := Event{
		Kind: kind, Rule: r.Name, Type: r.Type, App: p.App,
		Time: p.Time, Value: value, Reference: ref,
	}
	what := r.Type
	if r.Type == TypeQoEFloor {
		what = "qoe " + r.Field
	} else {
		what = "type-compliance rate"
	}
	if kind == "fire" {
		if ref > 0 {
			ev.Message = fmt.Sprintf("alert %s firing: app=%s %s=%.3f (reference %.3f)", r.Name, p.App, what, value, ref)
		} else {
			ev.Message = fmt.Sprintf("alert %s firing: app=%s %s=%.3f", r.Name, p.App, what, value)
		}
	} else {
		ev.Message = fmt.Sprintf("alert %s resolved: app=%s %s=%.3f", r.Name, p.App, what, value)
	}
	return ev
}

func (e *Engine) updateFiringGauge() {
	if e.firing == nil {
		return
	}
	n := 0
	for _, st := range e.states {
		if st.firing {
			n++
		}
	}
	e.firing.Set(int64(n))
}

// RuleState is one (rule, app) pair's state in a Snapshot.
type RuleState struct {
	Rule   string    `json:"rule"`
	Type   string    `json:"type"`
	App    string    `json:"app"`
	Firing bool      `json:"firing"`
	Since  time.Time `json:"since,omitempty"`
	// Value and Evaluated are the last watched value and the timestamp
	// of the last evaluated point.
	Value     float64   `json:"value"`
	Evaluated time.Time `json:"evaluated"`
	// Breach and Clear are the current debounce/hysteresis streaks;
	// Fires counts firing episodes since the state was created.
	Breach int    `json:"breach_streak"`
	Clear  int    `json:"clear_streak"`
	Fires  uint64 `json:"fires"`
	// Reference is the compliance_drop baseline rate (present once a
	// non-breaching point has been seen).
	Reference *float64 `json:"reference,omitempty"`
}

// Snapshot reports every tracked (rule, app) state plus the active rule
// set, sorted by rule then app — the /compliance/alerts wire shape.
type Snapshot struct {
	Rules  []RuleInfo  `json:"rules"`
	States []RuleState `json:"states"`
	Firing int         `json:"firing"`
}

// RuleInfo describes one configured rule in a Snapshot.
type RuleInfo struct {
	Name string `json:"name"`
	Rule
}

// Snapshot captures the engine state.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := Snapshot{}
	for _, r := range e.rules {
		snap.Rules = append(snap.Rules, RuleInfo{Name: r.Name, Rule: r})
	}
	ruleType := make(map[string]string, len(e.rules))
	for _, r := range e.rules {
		ruleType[r.Name] = r.Type
	}
	for k, st := range e.states {
		rs := RuleState{
			Rule: k.rule, Type: ruleType[k.rule], App: k.app,
			Firing: st.firing, Value: st.value, Evaluated: st.eval,
			Breach: st.breach, Clear: st.clear, Fires: st.fires,
		}
		if st.firing {
			rs.Since = st.since
		}
		if st.refOK {
			ref := st.ref
			rs.Reference = &ref
		}
		snap.States = append(snap.States, rs)
		if st.firing {
			snap.Firing++
		}
	}
	sort.Slice(snap.States, func(i, j int) bool {
		if snap.States[i].Rule != snap.States[j].Rule {
			return snap.States[i].Rule < snap.States[j].Rule
		}
		return snap.States[i].App < snap.States[j].App
	})
	return snap
}

// Handler serves Snapshot as JSON — mounted at /compliance/alerts.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.Snapshot()) //nolint:errcheck // client gone
	})
}
