// Package pcap reads and writes classic libpcap capture files.
//
// The paper captures iPhone traffic with Wireshark through Apple's Remote
// Virtual Interface; the on-disk artifact is a pcap file. This package is
// the equivalent substrate for our synthetic captures: cmd/rtcgen writes
// pcap files and cmd/rtccheck reads them, so the analysis half of the
// pipeline also works on real captures produced by tcpdump/Wireshark.
//
// Both the microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) variants
// are supported, in either byte order. pcapng is intentionally out of
// scope; `tshark -F pcap` converts losslessly for our link types.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for classic pcap, as written (native-endian on write,
// either endianness accepted on read).
const (
	MagicMicroseconds = 0xA1B2C3D4
	MagicNanoseconds  = 0xA1B23C4D
)

// LinkType identifies the layer-2 framing of captured packets, per the
// tcpdump.org registry.
type LinkType uint32

// Link types used by this repository. LinkTypeRaw matches what Apple RVI
// captures produce (raw IP, no Ethernet header); LinkTypeEthernet covers
// conventional captures.
const (
	LinkTypeNull     LinkType = 0
	LinkTypeEthernet LinkType = 1
	LinkTypeRaw      LinkType = 101
)

func (lt LinkType) String() string {
	switch lt {
	case LinkTypeNull:
		return "NULL"
	case LinkTypeEthernet:
		return "EN10MB"
	case LinkTypeRaw:
		return "RAW"
	default:
		return fmt.Sprintf("LINKTYPE(%d)", uint32(lt))
	}
}

// Packet is one captured frame.
type Packet struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// Data is the captured bytes starting at the link layer.
	Data []byte
	// OrigLen is the original wire length; equals len(Data) unless the
	// capture truncated the packet (snaplen).
	OrigLen int
}

// ErrBadMagic is returned when the file header does not carry a known
// pcap magic number.
var ErrBadMagic = errors.New("pcap: bad magic number")

// fileHeader is the 24-byte classic pcap global header.
const fileHeaderLen = 24

// recordHeaderLen is the 16-byte per-packet header.
const recordHeaderLen = 16

// DefaultSnapLen is the snapshot length written into file headers.
const DefaultSnapLen = 262144

// Writer emits a classic pcap file with microsecond timestamps.
type Writer struct {
	w        io.Writer
	linkType LinkType
	wroteHdr bool
}

// NewWriter returns a Writer that will emit packets with the given link
// type. The file header is written lazily on the first WritePacket (or
// explicitly via Flush-like WriteHeader).
func NewWriter(w io.Writer, linkType LinkType) *Writer {
	return &Writer{w: w, linkType: linkType}
}

// WriteHeader writes the global file header. It is idempotent.
func (w *Writer) WriteHeader() error {
	if w.wroteHdr {
		return nil
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(w.linkType))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write header: %w", err)
	}
	w.wroteHdr = true
	return nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(pkt Packet) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	origLen := pkt.OrigLen
	if origLen < len(pkt.Data) {
		origLen = len(pkt.Data)
	}
	var hdr [recordHeaderLen]byte
	ts := pkt.Timestamp
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pkt.Data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(pkt.Data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Reader parses a classic pcap file.
type Reader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	nanos     bool
	linkType  LinkType
	snapLen   uint32
}

// NewReader parses the global header from r and returns a Reader for the
// packet records that follow.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	pr := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:])
	magicBE := binary.BigEndian.Uint32(hdr[0:])
	switch {
	case magicLE == MagicMicroseconds:
		pr.byteOrder = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		pr.byteOrder, pr.nanos = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		pr.byteOrder = binary.BigEndian
	case magicBE == MagicNanoseconds:
		pr.byteOrder, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magicBE)
	}
	pr.snapLen = pr.byteOrder.Uint32(hdr[16:])
	pr.linkType = LinkType(pr.byteOrder.Uint32(hdr[20:]))
	return pr, nil
}

// LinkType reports the capture's link type.
func (r *Reader) LinkType() LinkType { return r.linkType }

// SnapLen reports the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// ReadPacket returns the next packet, or io.EOF at a clean end of file.
// A truncated trailing record returns io.ErrUnexpectedEOF.
func (r *Reader) ReadPacket() (Packet, error) {
	var buf []byte
	return r.ReadPacketInto(&buf)
}

// ReadPacketInto is ReadPacket with caller-managed storage: the record
// bytes are read into *buf (grown when too small and written back), and
// the returned Packet's Data aliases it. Callers that process each
// packet before reading the next reuse one buffer for the whole file,
// which is what keeps the streaming analysis path allocation-free per
// record.
func (r *Reader) ReadPacketInto(buf *[]byte) (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := r.byteOrder.Uint32(hdr[0:])
	frac := r.byteOrder.Uint32(hdr[4:])
	capLen := r.byteOrder.Uint32(hdr[8:])
	origLen := r.byteOrder.Uint32(hdr[12:])
	if capLen > r.snapLen && r.snapLen != 0 && capLen > DefaultSnapLen {
		return Packet{}, fmt.Errorf("pcap: record capture length %d exceeds snaplen", capLen)
	}
	if uint32(cap(*buf)) < capLen {
		*buf = make([]byte, capLen)
	}
	data := (*buf)[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: read record data: %w", err)
	}
	nanos := int64(frac)
	if !r.nanos {
		nanos *= 1000
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}

// ReadAll reads every remaining packet.
func (r *Reader) ReadAll() ([]Packet, error) {
	var pkts []Packet
	for {
		p, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}
