package bench

import (
	"strings"
	"testing"
	"time"
)

// TestScenarioMatrix pins the shape of the benchmark matrix: every
// ingestion mode crossed with every traffic cell, unique names, and
// the media-heavy cell present — the cell the FeedBatch speedup
// criterion is recorded on.
func TestScenarioMatrix(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 9 {
		t.Fatalf("Scenarios() = %d cells, want 9 (3 modes x 3 cells)", len(scs))
	}
	seen := map[string]bool{}
	perMode := map[Mode]int{}
	mediaHeavy := 0
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		perMode[sc.Mode]++
		if strings.HasSuffix(sc.Name, "/media-heavy") {
			mediaHeavy++
			if sc.Background {
				t.Errorf("%s: media-heavy cell must disable background traffic", sc.Name)
			}
		}
	}
	for _, m := range []Mode{ModeFeed, ModeFeedBatch, ModeBatch} {
		if perMode[m] != 3 {
			t.Errorf("mode %s has %d cells, want 3", m, perMode[m])
		}
	}
	if mediaHeavy != 3 {
		t.Errorf("media-heavy cells = %d, want one per mode", mediaHeavy)
	}
}

// TestHarnessRuns drives one full Measure through each ingestion mode
// on the small relay cell: every mode must analyze the identical
// capture and report a coherent measurement.
func TestHarnessRuns(t *testing.T) {
	packets := map[Mode]int{}
	for _, sc := range Scenarios() {
		if !strings.HasSuffix(sc.Name, "/relay") {
			continue
		}
		p, err := Prepare(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if p.Packets == 0 || p.Bytes == 0 {
			t.Fatalf("%s: empty capture (%d packets, %d bytes)", sc.Name, p.Packets, p.Bytes)
		}
		packets[sc.Mode] = p.Packets
		res, err := Measure(p, 2, 0)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Name != sc.Name || res.Packets != p.Packets {
			t.Errorf("%s: result identity %q/%d, want %q/%d", sc.Name, res.Name, res.Packets, sc.Name, p.Packets)
		}
		if res.NsPerOp <= 0 || res.PktsPerSec <= 0 {
			t.Errorf("%s: non-positive measurement %+v", sc.Name, res)
		}
	}
	if packets[ModeFeed] != packets[ModeFeedBatch] || packets[ModeFeed] != packets[ModeBatch] {
		t.Errorf("modes saw different captures: %v", packets)
	}
}

// TestMeasureBestKeepsFastest checks the noise-rejection helper
// returns a result and that repetitions don't change the workload.
func TestMeasureBestKeepsFastest(t *testing.T) {
	sc := Scenarios()[0]
	p, err := Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureBest(p, 2, 1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != sc.Name || res.NsPerOp <= 0 {
		t.Errorf("MeasureBest returned %+v for %s", res, sc.Name)
	}
}
