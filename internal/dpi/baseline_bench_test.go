package dpi

// This file freezes the pre-registry dispatch path — the hardcoded
// matchAt chain and protocol matchers exactly as they were before the
// pluggable registry refactor — as the baseline for the dispatch
// benchmarks. BenchmarkDispatch compares the registry-driven probe path
// against this chain; the registry path must stay allocation-free and
// within a few percent. Do not "fix" or modernize this code: its value
// is that it does not change.

import (
	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// baselineEngine is the pre-registry engine: MaxOffset plus the
// hardcoded matcher chain.
type baselineEngine struct {
	MaxOffset int
	Protocols []Protocol
	Adaptive  bool
}

func (e *baselineEngine) enabled(p Protocol) bool {
	if len(e.Protocols) == 0 {
		return true
	}
	for _, q := range e.Protocols {
		if q == p {
			return true
		}
	}
	return false
}

type baselineContext struct {
	// rtpLastSeq maps SSRC -> last accepted sequence number.
	rtpLastSeq map[uint32]uint16
	// rtpLastTS maps SSRC -> last accepted RTP timestamp, for the
	// timestamp-plausibility check.
	rtpLastTS map[uint32]uint32
	// sawSTUN records that the stream carried STUN, biasing classic
	// (cookie-less) STUN acceptance.
	sawSTUN bool
	// quicCIDs records connection IDs seen in long headers, keyed by
	// string(cid), enabling short-header matching.
	quicCIDs map[string]bool
	// shortCIDLen is the DCID length expected for short-header packets,
	// learned from long headers.
	shortCIDLen int
	// validatedSSRC, when non-nil, restricts RTP acceptance to SSRCs
	// that survived the stream-level pass-1 validation (InspectStream).
	// Nil means permissive single-datagram mode.
	validatedSSRC map[uint32]bool
	// maxMsgOffset is the deepest offset a validated message has been
	// found at on this stream; msgCount counts validated messages.
	// Both feed the adaptive offset bound.
	maxMsgOffset int
	msgCount     int
	// shiftAttempts accumulates candidate-extraction attempts (matchAt
	// calls) across the stream's datagrams, for the offset-shift
	// metric. InspectStream drains it into the registry.
	shiftAttempts int
	// rtpProbe is decode scratch for RTP candidate probing. Reusing it
	// keeps the CSRC storage of rejected candidates (byte windows whose
	// CSRC-count bits are nonzero) from allocating per probe.
	rtpProbe rtp.Packet
}

// newBaselineContext returns an empty per-stream context.
func newBaselineContext() *baselineContext {
	return &baselineContext{
		rtpLastSeq: make(map[uint32]uint16),
		rtpLastTS:  make(map[uint32]uint32),
		quicCIDs:   make(map[string]bool),
	}
}

// baselineSeqClose reports whether b follows a within a reordering window.
func baselineSeqClose(a, b uint16) bool {
	d := b - a // wraparound arithmetic
	return d != 0 && (d < 64 || d > 0xffff-16)
}

// baselineTsClose reports whether an RTP timestamp is plausible given the last
// accepted one for the SSRC: within ±2^21 ticks (over 20 seconds at a
// 90 kHz video clock), with wraparound.
func baselineTsClose(last, ts uint32) bool {
	d := ts - last
	return d < 1<<21 || d > (1<<32)-(1<<21)
}

// Inspect runs candidate extraction and validation over one datagram
// payload, updating ctx. ctx may be nil for stateless inspection.
func (e *baselineEngine) Inspect(payload []byte, ctx *baselineContext) Result {
	if ctx == nil {
		ctx = newBaselineContext()
	}
	var msgs []Message
	limit := e.MaxOffset
	if limit <= 0 {
		limit = 200
	}
	// Adaptive bound: after enough messages, no deeper proprietary
	// header is expected than twice the deepest seen (floor 48 bytes).
	if e.Adaptive && ctx.msgCount >= 16 {
		if adaptive := baselineMaxInt(48, 2*ctx.maxMsgOffset+8); adaptive < limit {
			limit = adaptive
		}
	}
	i := 0
	for i < len(payload) {
		if i > limit && len(msgs) == 0 {
			break
		}
		ctx.shiftAttempts++
		m, ok := e.matchAt(payload, i, ctx)
		if !ok {
			i++
			continue
		}
		if m.Protocol == ProtoRTP {
			// RTP carries no length field; a match initially claims the
			// rest of the payload. Scan inside the claimed payload for a
			// strong second candidate (Zoom packs two RTP messages into
			// one datagram) and truncate to it.
			if cut, ok := e.findStrongCandidate(payload, m, ctx); ok {
				m = e.truncateRTP(payload, m, cut)
			}
			ctx.noteRTP(m.RTP)
		}
		msgs = append(msgs, m)
		ctx.msgCount++
		if m.Offset > ctx.maxMsgOffset {
			ctx.maxMsgOffset = m.Offset
		}
		i = m.Offset + m.Length
	}
	res := Result{Messages: msgs}
	switch {
	case len(msgs) == 0:
		res.Class = ClassFullyProprietary
	case msgs[0].Offset == 0:
		res.Class = ClassStandard
	default:
		res.Class = ClassProprietaryHeader
		res.ProprietaryHeader = payload[:msgs[0].Offset]
	}
	return res
}

// matchAt tries every enabled protocol pattern at payload[i:]. Matchers
// are ordered so that protocols with stronger structural signatures win:
// STUN (magic cookie), ChannelData, RTCP (type range), QUIC, classic
// STUN, then RTP.
func (e *baselineEngine) matchAt(payload []byte, i int, ctx *baselineContext) (Message, bool) {
	b := payload[i:]
	if e.enabled(ProtoSTUN) {
		if m, ok := baselineMatchSTUN(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	if e.enabled(ProtoChannelData) {
		if m, ok := baselineMatchChannelData(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	if e.enabled(ProtoRTCP) {
		if m, ok := baselineMatchRTCP(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	if e.enabled(ProtoQUIC) {
		if m, ok := baselineMatchQUIC(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	if e.enabled(ProtoSTUN) {
		if m, ok := baselineMatchClassicSTUN(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	if e.enabled(ProtoRTP) {
		if m, ok := baselineMatchRTP(b, ctx); ok {
			m.Offset = i
			return m, true
		}
	}
	return Message{}, false
}

// baselineMatchSTUN matches RFC 5389+ STUN: the magic cookie is the validation
// anchor. The message type is deliberately unrestricted (§4.1.1) so
// undefined types like WhatsApp's 0x0801 surface.
func baselineMatchSTUN(b []byte, ctx *baselineContext) (Message, bool) {
	if !stun.LooksLikeHeader(b) {
		return Message{}, false
	}
	if len(b) < stun.HeaderLen {
		return Message{}, false
	}
	cookie := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	if cookie != stun.MagicCookie {
		return Message{}, false
	}
	m, err := stun.Decode(b)
	if err != nil {
		return Message{}, false
	}
	ctx.sawSTUN = true
	return Message{Protocol: ProtoSTUN, Length: m.DecodedLen(), STUN: m}, true
}

// baselineMatchClassicSTUN matches RFC 3489 STUN, which lacks the magic cookie.
// Without the cookie the false-positive risk is high, so validation
// requires the declared length to consume the remaining payload exactly
// and the attribute region to walk cleanly; the paper's equivalent is
// its "valid length field" heuristic.
func baselineMatchClassicSTUN(b []byte, ctx *baselineContext) (Message, bool) {
	if !stun.LooksLikeHeader(b) {
		return Message{}, false
	}
	declared := int(b[2])<<8 | int(b[3])
	if declared != len(b)-stun.HeaderLen {
		return Message{}, false
	}
	m, err := stun.Decode(b)
	if err != nil {
		return Message{}, false
	}
	if !m.Classic {
		return Message{}, false // cookie case handled by baselineMatchSTUN
	}
	// Without the magic cookie anchor, only registered methods are
	// plausible: every classic-STUN deployment the paper observed
	// (Zoom's RFC 3489 usage) uses defined methods, while zero-filled
	// or random regions frequently parse as "type 0x0000" messages.
	if _, defined := stun.DefinedMessageType(m.Type); !defined {
		return Message{}, false
	}
	ctx.sawSTUN = true
	return Message{Protocol: ProtoSTUN, Length: m.DecodedLen(), STUN: m}, true
}

// baselineMatchChannelData matches TURN ChannelData framing. The channel range
// is restricted to RFC 8656's 0x4000-0x4FFF: the wider RFC 5766 range
// would swallow FaceTime's 0x6000 proprietary header, which the paper
// classifies as proprietary (§5.3).
func baselineMatchChannelData(b []byte, ctx *baselineContext) (Message, bool) {
	if len(b) < 4 {
		return Message{}, false
	}
	// TURN ChannelData only ever flows on a socket that previously
	// carried the STUN allocation handshake (RFC 8656 §12). In
	// stream-validated mode, require prior STUN on the stream; this
	// rejects channel-range byte windows inside proprietary payloads.
	if ctx.validatedSSRC != nil && !ctx.sawSTUN {
		return Message{}, false
	}
	ch := uint16(b[0])<<8 | uint16(b[1])
	if ch < stun.ChannelMin || ch > stun.ChannelMax8656 {
		return Message{}, false
	}
	length := int(b[2])<<8 | int(b[3])
	// Real ChannelData frames carry at least a minimal protocol message
	// (an RTP header is 12 bytes); tiny declared lengths are counter or
	// flag bytes of proprietary payloads that happen to sit in the
	// channel range.
	if length < 12 {
		return Message{}, false
	}
	total := 4 + length
	if total > len(b) {
		return Message{}, false
	}
	// Allow up to 3 bytes of padding after the frame; more implies the
	// length field is not a real ChannelData length.
	if len(b)-total > 3 {
		return Message{}, false
	}
	cd, err := stun.DecodeChannelData(b)
	if err != nil {
		return Message{}, false
	}
	return Message{Protocol: ProtoChannelData, Length: cd.DecodedLen(), ChannelData: cd}, true
}

// baselineMatchRTCP matches an RTCP compound region: version 2 and packet type
// 192-223 per the RFC 5761 demultiplexing range, with the paper's
// cross-validation heuristic: the sender SSRC of unassigned packet
// types must match a known RTP stream, and the trailing bytes must form
// a plausible trailer (nothing, a small proprietary suffix, or an SRTCP
// index with or without the auth tag).
func baselineMatchRTCP(b []byte, ctx *baselineContext) (Message, bool) {
	if !rtcp.LooksLikeHeader(b) {
		return Message{}, false
	}
	pkts, trailing, err := rtcp.DecodeCompound(b)
	if err != nil || len(pkts) == 0 {
		return Message{}, false
	}
	length := 0
	for _, p := range pkts {
		length += p.Header.ByteLen()
	}
	switch len(trailing) {
	case 0, 1, 2, 3, 4, 14:
	default:
		return Message{}, false
	}
	for _, p := range pkts {
		// Every real RTCP packet carries at least the header plus one
		// SSRC word.
		if p.Header.ByteLen() < 8 {
			return Message{}, false
		}
		if rtcp.Defined(p.Header.Type) {
			continue
		}
		// Unassigned type: require SSRC support from the stream's
		// validated RTP state ("cross validated sender SSRC with known
		// RTP streams", §4.1.1). Permissive single-datagram mode has no
		// validated set and accepts the candidate.
		if ctx.validatedSSRC == nil {
			continue
		}
		ssrc, ok := p.SenderSSRC()
		if !ok || !ctx.validatedSSRC[ssrc] {
			return Message{}, false
		}
	}
	return Message{
		Protocol:     ProtoRTCP,
		Length:       length + len(trailing),
		RTCP:         pkts,
		RTCPTrailing: trailing,
	}, true
}

// baselineMatchQUIC matches QUIC long headers structurally, and short headers
// only when the stream has established QUIC state (a known DCID at the
// expected length), mirroring the paper's DCID/SCID consistency
// heuristic.
func baselineMatchQUIC(b []byte, ctx *baselineContext) (Message, bool) {
	if quicwire.IsLongHeader(b) {
		// Probe into a stack Header (CIDs aliasing b); most candidate
		// offsets are rejected, so the heap copy waits for acceptance.
		var probe quicwire.Header
		if quicwire.ParseLongInto(&probe, b) != nil {
			return Message{}, false
		}
		if probe.Version != quicwire.Version1 && probe.Version != quicwire.VersionNegotiation {
			return Message{}, false
		}
		if probe.Version == quicwire.Version1 && !probe.FixedBit {
			return Message{}, false
		}
		if probe.Version == quicwire.VersionNegotiation {
			// A real Version Negotiation packet lists at least one
			// nonzero version; all-zero regions of proprietary payloads
			// would otherwise masquerade as VN.
			if len(probe.SupportedVersions) == 0 {
				return Message{}, false
			}
			for _, v := range probe.SupportedVersions {
				if v == 0 {
					return Message{}, false
				}
			}
		}
		length := len(b) // Retry and VN consume the datagram
		if probe.Version == quicwire.Version1 && probe.Type != quicwire.TypeRetry {
			length = probe.HeaderLen + int(probe.PayloadLength)
		}
		if len(probe.DCID) > 0 {
			ctx.quicCIDs[string(probe.DCID)] = true
			ctx.shortCIDLen = len(probe.DCID)
		}
		if len(probe.SCID) > 0 {
			ctx.quicCIDs[string(probe.SCID)] = true
		}
		h := new(quicwire.Header)
		*h = probe
		h.CloneCIDs()
		return Message{Protocol: ProtoQUIC, Length: length, QUIC: h}, true
	}
	// Short header: requires context.
	if ctx.shortCIDLen == 0 || len(b) < 1+ctx.shortCIDLen {
		return Message{}, false
	}
	if b[0]&0xc0 != 0x40 { // form 0, fixed bit 1
		return Message{}, false
	}
	h, err := quicwire.ParseShort(b, ctx.shortCIDLen)
	if err != nil || !ctx.quicCIDs[string(h.DCID)] {
		return Message{}, false
	}
	return Message{Protocol: ProtoQUIC, Length: len(b), QUIC: h}, true
}

// baselineMatchRTP matches RTP: version 2, first payload byte outside the RTCP
// demultiplexing range (RFC 5761), and either a known SSRC with a
// plausible next sequence number or a fresh zero-CSRC packet.
func baselineMatchRTP(b []byte, ctx *baselineContext) (Message, bool) {
	if !rtp.LooksLikeHeader(b) {
		return Message{}, false
	}
	if b[1] >= 192 && b[1] <= 223 {
		return Message{}, false // RTCP range
	}
	// Probe into the context's scratch Packet; most candidate offsets
	// are rejected, so the heap copy is deferred to acceptance.
	probe := &ctx.rtpProbe
	if rtp.DecodeInto(probe, b) != nil {
		return Message{}, false
	}
	if ctx.validatedSSRC != nil && !ctx.validatedSSRC[probe.SSRC] {
		// Stream-validated mode: only SSRCs with cross-packet support
		// survive (paper §4.1.1: "continuous sequence number within the
		// same stream").
		return Message{}, false
	}
	if last, ok := ctx.rtpLastSeq[probe.SSRC]; ok {
		if !baselineSeqClose(last, probe.SequenceNumber) {
			return Message{}, false
		}
		if lastTS, has := ctx.rtpLastTS[probe.SSRC]; has && !baselineTsClose(lastTS, probe.Timestamp) {
			// Known SSRC but an implausible timestamp jump: a stray
			// byte window that happens to cover a real SSRC value.
			return Message{}, false
		}
	} else if probe.CSRCCount != 0 {
		// First sighting of an SSRC: RTC media never uses CSRC lists in
		// these applications, so a nonzero CSRC count on a fresh SSRC
		// marks a mis-parse.
		return Message{}, false
	}
	p := new(rtp.Packet)
	*p = *probe
	if len(probe.CSRC) > 0 {
		p.CSRC = append([]uint32(nil), probe.CSRC...)
	} else {
		p.CSRC = nil // scratch reuse leaves a non-nil empty slice
	}
	return Message{Protocol: ProtoRTP, Length: len(b), RTP: p}, true
}

// noteRTP records an accepted RTP message in the context.
func (c *baselineContext) noteRTP(p *rtp.Packet) {
	c.rtpLastSeq[p.SSRC] = p.SequenceNumber
	c.rtpLastTS[p.SSRC] = p.Timestamp
}

// findStrongCandidate scans inside an RTP message's claimed payload for
// a second message start. Only strong candidates count: a magic-cookie
// STUN header, a valid RTCP compound, a QUIC long header, or an RTP
// header whose SSRC matches the outer message (Zoom's two-RTP case).
func (e *baselineEngine) findStrongCandidate(payload []byte, m Message, ctx *baselineContext) (int, bool) {
	start := m.Offset + m.RTP.HeaderSize() + 1
	end := m.Offset + m.Length
	for j := start; j < end-rtp.HeaderLen; j++ {
		b := payload[j:end]
		if _, ok := baselineMatchSTUN(b, ctx); ok {
			return j, true
		}
		// An RTCP region inside an RTP payload must show SSRC support:
		// encrypted media bytes occasionally imitate an RTCP header, and
		// accepting one would wrongly truncate the outer RTP message.
		if m2, ok := baselineMatchRTCP(b, ctx); ok && len(m2.RTCP) > 0 {
			if ssrc, has := m2.RTCP[0].SenderSSRC(); has {
				_, known := ctx.rtpLastSeq[ssrc]
				if known || (ctx.validatedSSRC != nil && ctx.validatedSSRC[ssrc]) {
					return j, true
				}
			}
		}
		if inner, ok := baselineMatchRTP(b, ctx); ok {
			if inner.RTP.SSRC == m.RTP.SSRC && inner.RTP.SequenceNumber != m.RTP.SequenceNumber {
				return j, true
			}
		}
	}
	return 0, false
}

// truncateRTP re-decodes the RTP message with its payload cut at the
// given absolute offset.
func (e *baselineEngine) truncateRTP(payload []byte, m Message, cut int) Message {
	p, err := rtp.Decode(payload[m.Offset:cut])
	if err != nil {
		return m // cannot shrink; keep the original claim
	}
	m.RTP = p
	m.Length = cut - m.Offset
	return m
}

func baselineMaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
