// Package propheader infers the structure of proprietary headers from
// samples, automating the reverse engineering behind the paper's §5.3
// findings: Zoom's direction byte, constant per-stream media ID, and
// media-type field; FaceTime's fixed 0x6000 magic and 16-bit length
// field; Discord's monotonic counters.
//
// Given the proprietary-header regions the DPI carved off a stream's
// datagrams (with each sample's direction and the length of the bytes
// that followed the header), Infer classifies every byte offset:
//
//   - Constant: one value across all samples;
//   - Direction: constant per direction, different across directions
//     (Zoom's 0x00/0x04 byte);
//   - Counter: strictly increasing per direction (Discord's trailer
//     counter, FaceTime's keepalive counters);
//   - LengthHi/LengthLo: a big-endian 16-bit field that tracks the
//     remaining datagram length plus a fixed bias (FaceTime's 0x6000
//     header length);
//   - Variable: none of the above (opaque/enciphered fields).
//
// The classifier works on the shortest common header length so
// variable-length headers (Zoom's 24-39 bytes) are analyzed over their
// shared prefix.
package propheader

import (
	"fmt"
	"strings"
)

// Direction tags a sample's packet orientation within its stream.
type Direction uint8

// Sample directions.
const (
	DirAToB Direction = iota
	DirBToA
)

// Sample is one proprietary header occurrence.
type Sample struct {
	// Header is the byte region before the embedded standard message.
	Header []byte
	// Dir is the packet direction.
	Dir Direction
	// Remainder is the number of bytes following the header in the
	// datagram (the embedded message's length), used to detect length
	// fields.
	Remainder int
}

// FieldKind classifies one byte offset.
type FieldKind string

// Field kinds.
const (
	KindConstant  FieldKind = "constant"
	KindDirection FieldKind = "direction-flag"
	KindCounter   FieldKind = "counter"
	KindLengthHi  FieldKind = "length16-hi"
	KindLengthLo  FieldKind = "length16-lo"
	KindVariable  FieldKind = "variable"
)

// Field describes one inferred byte position.
type Field struct {
	Offset int
	Kind   FieldKind
	// Value holds the constant value for KindConstant.
	Value byte
	// PerDirection holds the per-direction values for KindDirection.
	PerDirection map[Direction]byte
	// LengthBias is remainder-minus-field for length fields: the number
	// of header bytes the length field also covers (FaceTime's field
	// counts the opaque header bytes after it plus the message).
	LengthBias int
	// CoversRest marks a length field equal to "all header bytes after
	// the field plus the payload" even when the header length varies.
	CoversRest bool
}

// Report is the inference outcome.
type Report struct {
	// Samples is the number of headers analyzed.
	Samples int
	// MinLen and MaxLen bound the observed header lengths.
	MinLen, MaxLen int
	// Fields classifies each offset of the common prefix.
	Fields []Field
}

// Infer analyzes header samples. It needs at least 4 samples to say
// anything meaningful and returns a zero Report otherwise.
func Infer(samples []Sample) Report {
	var rep Report
	if len(samples) < 4 {
		return rep
	}
	rep.Samples = len(samples)
	rep.MinLen = len(samples[0].Header)
	for _, s := range samples {
		n := len(s.Header)
		if n < rep.MinLen {
			rep.MinLen = n
		}
		if n > rep.MaxLen {
			rep.MaxLen = n
		}
	}
	if rep.MinLen == 0 {
		return rep
	}

	for off := 0; off < rep.MinLen; off++ {
		rep.Fields = append(rep.Fields, classifyOffset(samples, off))
	}
	// Pair length-high/low bytes: a 16-bit length field is detected
	// jointly, overriding single-byte verdicts.
	detectLengthFields(samples, &rep)
	return rep
}

// classifyOffset inspects one byte position.
func classifyOffset(samples []Sample, off int) Field {
	f := Field{Offset: off, Kind: KindVariable}

	// Constant?
	constant := true
	for _, s := range samples[1:] {
		if s.Header[off] != samples[0].Header[off] {
			constant = false
			break
		}
	}
	if constant {
		f.Kind = KindConstant
		f.Value = samples[0].Header[off]
		return f
	}

	// Direction flag: constant within each direction, differing across.
	perDir := map[Direction]byte{}
	dirSeen := map[Direction]bool{}
	dirConst := true
	for _, s := range samples {
		if !dirSeen[s.Dir] {
			dirSeen[s.Dir] = true
			perDir[s.Dir] = s.Header[off]
			continue
		}
		if perDir[s.Dir] != s.Header[off] {
			dirConst = false
			break
		}
	}
	if dirConst && len(perDir) == 2 && perDir[DirAToB] != perDir[DirBToA] {
		f.Kind = KindDirection
		f.PerDirection = perDir
		return f
	}

	// Counter: strictly non-decreasing per direction with at least one
	// increase, treating samples in order.
	if isCounter(samples, off) {
		f.Kind = KindCounter
		return f
	}
	return f
}

func isCounter(samples []Sample, off int) bool {
	last := map[Direction]int{}
	seen := map[Direction]bool{}
	increased := false
	for _, s := range samples {
		v := int(s.Header[off])
		if seen[s.Dir] {
			if v < last[s.Dir] {
				return false
			}
			if v > last[s.Dir] {
				increased = true
			}
		}
		seen[s.Dir] = true
		last[s.Dir] = v
	}
	return increased
}

// detectLengthFields looks for adjacent byte pairs forming a big-endian
// 16-bit value equal to (remainder + constant bias) in every sample.
func detectLengthFields(samples []Sample, rep *Report) {
	for off := 0; off+1 < rep.MinLen; off++ {
		if coversRestAt(samples, off) {
			rep.Fields[off] = Field{Offset: off, Kind: KindLengthHi, CoversRest: true}
			rep.Fields[off+1] = Field{Offset: off + 1, Kind: KindLengthLo, CoversRest: true}
			continue
		}
		bias, ok := lengthBiasAt(samples, off)
		if !ok {
			continue
		}
		rep.Fields[off] = Field{Offset: off, Kind: KindLengthHi, LengthBias: bias}
		rep.Fields[off+1] = Field{Offset: off + 1, Kind: KindLengthLo, LengthBias: bias}
	}
}

// coversRestAt checks the "length of the remaining header bytes plus
// the embedded message" form (the paper's description of FaceTime's
// field), which holds even when the header length varies.
func coversRestAt(samples []Sample, off int) bool {
	distinct := false
	first := -1
	for _, s := range samples {
		v := int(s.Header[off])<<8 | int(s.Header[off+1])
		want := (len(s.Header) - (off + 2)) + s.Remainder
		if v != want {
			return false
		}
		if first == -1 {
			first = want
		} else if want != first {
			distinct = true
		}
	}
	return distinct
}

// lengthBiasAt checks whether the 16-bit field at off tracks the
// remainder with a constant bias that is small and non-negative (the
// field may also cover trailing header bytes).
func lengthBiasAt(samples []Sample, off int) (int, bool) {
	bias := 0
	for i, s := range samples {
		v := int(s.Header[off])<<8 | int(s.Header[off+1])
		b := v - s.Remainder
		if i == 0 {
			bias = b
			continue
		}
		if b != bias {
			return 0, false
		}
	}
	// A real length field's bias is bounded by the header length (it
	// can cover at most the bytes between itself and the payload); a
	// constant 16-bit value only masquerades as one if every sample's
	// remainder is identical, which the caller tolerates (constant
	// offsets are classified first).
	if bias < 0 || bias > len(samples[0].Header) {
		return 0, false
	}
	// Require at least two distinct remainders, otherwise any constant
	// pair would qualify.
	first := samples[0].Remainder
	for _, s := range samples[1:] {
		if s.Remainder != first {
			return bias, true
		}
	}
	return 0, false
}

// Describe renders the report as text.
func Describe(rep Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d samples, header length %d-%d bytes\n", rep.Samples, rep.MinLen, rep.MaxLen)
	i := 0
	for i < len(rep.Fields) {
		f := rep.Fields[i]
		// Coalesce runs of same-kind fields for readability.
		j := i
		for j+1 < len(rep.Fields) && rep.Fields[j+1].Kind == f.Kind &&
			(f.Kind == KindConstant || f.Kind == KindVariable || f.Kind == KindCounter) {
			j++
		}
		switch f.Kind {
		case KindConstant:
			var vals []string
			for k := i; k <= j; k++ {
				vals = append(vals, fmt.Sprintf("%02x", rep.Fields[k].Value))
			}
			fmt.Fprintf(&b, "  [%2d:%2d] constant 0x%s\n", i, j+1, strings.Join(vals, ""))
		case KindDirection:
			fmt.Fprintf(&b, "  [%2d:%2d] direction flag (0x%02x one way, 0x%02x the other)\n",
				i, j+1, f.PerDirection[DirAToB], f.PerDirection[DirBToA])
		case KindCounter:
			fmt.Fprintf(&b, "  [%2d:%2d] monotonic counter\n", i, j+1)
		case KindLengthHi:
			if f.CoversRest {
				fmt.Fprintf(&b, "  [%2d:%2d] 16-bit length of the remaining header bytes + payload\n", i, i+2)
			} else {
				fmt.Fprintf(&b, "  [%2d:%2d] 16-bit length of the following %d header bytes + payload\n",
					i, i+2, f.LengthBias)
			}
			j = i + 1
		case KindLengthLo:
			// Covered by the preceding KindLengthHi line.
		default:
			fmt.Fprintf(&b, "  [%2d:%2d] variable/opaque\n", i, j+1)
		}
		i = j + 1
	}
	return b.String()
}
