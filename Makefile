# Build/test entry points, mirrored by .github/workflows/ci.yml.
GO          ?= go
FUZZTIME    ?= 5s
COVER_FLOOR ?= 70

.PHONY: all vet staticcheck build test race fuzz-smoke cover bench proto-list ci

all: build

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs the pinned staticcheck; local
# runs skip quietly when the binary is absent so `make ci` works in
# minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly against its seed corpus plus a short
# mutation budget. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzInspect -fuzztime=$(FUZZTIME) ./internal/dpi
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChannelData -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCompound -fuzztime=$(FUZZTIME) ./internal/rtcp
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/rtp
	$(GO) test -run='^$$' -fuzz=FuzzParseLong -fuzztime=$(FUZZTIME) ./internal/quicwire
	$(GO) test -run='^$$' -fuzz=FuzzDTLSProbe -fuzztime=$(FUZZTIME) ./internal/proto/dtlsdrv
	$(GO) test -run='^$$' -fuzz=FuzzDecapsulate -fuzztime=$(FUZZTIME) ./internal/live

# Per-package coverage table, plus a hard floor on the observability
# package: internal/metrics must stay at or above $(COVER_FLOOR)%.
cover:
	$(GO) test -cover ./...
	$(GO) test -coverprofile=coverage.out ./internal/metrics
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3+0; printf "internal/metrics coverage: %s (floor %d%%)\n", $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }'

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# List the registered wire protocols: one row per handler with family,
# demultiplexing precedence, fuzz target, and wire fingerprint. The
# registry golden test (protolist_test.go) keeps this listing honest:
# it fails when a registered protocol is missing from the README or
# DESIGN docs or lacks a fuzz-smoke line above.
proto-list:
	$(GO) run ./cmd/rtccheck -protocols

ci: vet staticcheck build race fuzz-smoke cover
