// Package filterpipe implements the paper's two-stage unrelated-traffic
// filter (§3.2).
//
// Stage 1 removes streams whose active timespan is not fully enclosed in
// the call window expanded by a small slack (§3.2.1). Stage 2 removes
// intra-call background activity with four protocol-aware heuristics
// (§3.2.2): destination 3-tuple timing, TLS SNI blocklisting, local-IP
// exclusion, and well-known-port exclusion. Everything that survives is
// the RTC traffic handed to the DPI and compliance stages, and per-stage
// accounting reproduces Table 1.
package filterpipe

import (
	"net/netip"
	"strings"
	"time"

	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// DefaultWindowSlack is the call-window expansion of §3.2.1 ("2 seconds
// before and after the call").
const DefaultWindowSlack = 2 * time.Second

// DefaultSNIBlocklist is the known-non-RTC domain list. The paper built
// its list from 7.5 hours of idle-phone traffic; ours is seeded with the
// paper's examples plus the domains the background generator emits.
var DefaultSNIBlocklist = []string{
	"oauth2.googleapis.com",
	"web.facebook.com",
	"api.apple-cloudkit.com",
	"mesu.apple.com",
	"adservice.example-tracker.com",
	"itunes.apple.com",
}

// NonRTCPorts is the port-based exclusion set, following the paper's
// examples (DNS 53, DHCP 67/547, SSDP 1900) extended with the standard
// local-service ports from the IANA registry.
var NonRTCPorts = map[uint16]bool{
	53:   true, // DNS
	67:   true, // DHCP
	68:   true, // DHCP client
	123:  true, // NTP
	137:  true, // NetBIOS
	138:  true,
	139:  true,
	161:  true, // SNMP
	547:  true, // DHCPv6
	1900: true, // SSDP
	5353: true, // mDNS
	5355: true, // LLMNR
}

// Rule names a filtering heuristic for reporting.
type Rule string

// Filtering rules.
const (
	RuleTimespan   Rule = "timespan"
	RuleThreeTuple Rule = "3-tuple timing"
	RuleSNI        Rule = "TLS SNI"
	RuleLocalIP    Rule = "local IP"
	RulePort       Rule = "port-based"
)

// Removal records why a stream was removed.
type Removal struct {
	Stage  int // 1 or 2
	Rule   Rule
	Detail string
}

// Config parameterizes one filtering run.
type Config struct {
	// CallStart and CallEnd delimit the annotated call window.
	CallStart, CallEnd time.Time
	// WindowSlack expands the window on both sides; zero selects
	// DefaultWindowSlack.
	WindowSlack time.Duration
	// SNIBlocklist overrides DefaultSNIBlocklist when non-nil.
	SNIBlocklist []string
	// Metrics, when non-nil, receives per-stage accounting: input
	// packets/streams, removals labelled by stage and rule, and RTC
	// survivors. Recording happens once per run from the already
	// computed Result, so it costs nothing per packet.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives per-stream filter decisions
	// (admitted / filtered with stage and rule). Like Metrics, the
	// events are emitted once per run from the computed Result, in
	// deterministic stream order.
	Trace *obs.Pipeline
}

// Slack returns the effective window slack.
func (c Config) Slack() time.Duration {
	if c.WindowSlack == 0 {
		return DefaultWindowSlack
	}
	return c.WindowSlack
}

// Blocklist returns the effective SNI blocklist.
func (c Config) Blocklist() []string {
	if c.SNIBlocklist != nil {
		return c.SNIBlocklist
	}
	return DefaultSNIBlocklist
}

// Result is the outcome of a filtering run.
type Result struct {
	// RTC holds the surviving streams, in insertion order.
	RTC []*flow.Stream
	// Removed maps each removed stream to its reason.
	Removed map[flow.Key]Removal
	// RemovedStreams lists removed streams in insertion order.
	RemovedStreams []*flow.Stream

	// Accounting for Table 1, split by transport.
	RawUDP, RawTCP       flow.Counts
	Stage1UDP, Stage1TCP flow.Counts
	Stage2UDP, Stage2TCP flow.Counts
	RTCUDP, RTCTCP       flow.Counts
}

// Run applies both filter stages to the streams of table.
func Run(table *flow.Table, cfg Config) *Result {
	return RunWithSNI(table, cfg, streamSNI)
}

// RunWithSNI is Run with the TLS SNI extraction pluggable. The batch
// path scans each TCP stream's buffered segments (streamSNI); the
// streaming analyzer extracts the SNI incrementally at feed time —
// same packet order, so the same first ClientHello wins — and supplies
// a lookup here so Close can reuse this exact assembly code and stay
// byte-identical to the batch result without retaining TCP payloads.
func RunWithSNI(table *flow.Table, cfg Config, sni func(*flow.Stream) (string, bool)) *Result {
	res := &Result{Removed: make(map[flow.Key]Removal)}
	slack := cfg.Slack()
	winStart := cfg.CallStart.Add(-slack)
	winEnd := cfg.CallEnd.Add(slack)

	streams := table.Streams()
	tally(&res.RawUDP, &res.RawTCP, streams)

	// Stage 1: timespan alignment.
	var survivors []*flow.Stream
	var stage1 []*flow.Stream
	for _, s := range streams {
		first, last := s.Span()
		if first.Before(winStart) || last.After(winEnd) {
			res.Removed[s.Key] = Removal{Stage: 1, Rule: RuleTimespan,
				Detail: "stream span not enclosed in the expanded call window"}
			stage1 = append(stage1, s)
			continue
		}
		survivors = append(survivors, s)
	}
	tally(&res.Stage1UDP, &res.Stage1TCP, stage1)

	// Pre-compute stage-2 inputs.
	outsideTuples := outsideWindowTuples(table, winStart, winEnd)
	preCallPairs := preCallAddrPairs(streams, cfg.CallStart)
	blocklist := cfg.Blocklist()

	var stage2 []*flow.Stream
	for _, s := range survivors {
		if removal, removed := stage2Check(s, outsideTuples, preCallPairs, blocklist, sni); removed {
			res.Removed[s.Key] = removal
			stage2 = append(stage2, s)
			continue
		}
		res.RTC = append(res.RTC, s)
	}
	tally(&res.Stage2UDP, &res.Stage2TCP, stage2)
	tally(&res.RTCUDP, &res.RTCTCP, res.RTC)
	res.RemovedStreams = append(stage1, stage2...)
	record(cfg.Metrics, res)
	emitTrace(cfg.Trace, res)
	return res
}

// emitTrace emits the per-stream filter verdicts of a completed run:
// admissions in survivor order, then removals in stage order — the
// same deterministic order Result records them in.
func emitTrace(p *obs.Pipeline, res *Result) {
	if p == nil {
		return
	}
	for _, s := range res.RTC {
		p.StreamAdmitted(s.Key.String())
	}
	for _, s := range res.RemovedStreams {
		rm := res.Removed[s.Key]
		p.StreamFiltered(s.Key.String(), rm.Stage, string(rm.Rule), rm.Detail)
	}
}

// ruleSlug maps a filtering rule to its metric label value.
func ruleSlug(r Rule) string {
	switch r {
	case RuleTimespan:
		return "timespan"
	case RuleThreeTuple:
		return "three_tuple"
	case RuleSNI:
		return "sni"
	case RuleLocalIP:
		return "local_ip"
	case RulePort:
		return "port"
	}
	return "unknown"
}

// record folds a completed filtering run into the registry.
func record(reg *metrics.Registry, res *Result) {
	if reg == nil {
		return
	}
	add := func(name string, c flow.Counts, labels ...metrics.Label) {
		reg.Counter(name+"_streams_total", labels...).Add(uint64(c.Streams))
		reg.Counter(name+"_packets_total", labels...).Add(uint64(c.Packets))
		reg.Counter(name+"_bytes_total", labels...).Add(uint64(c.Bytes))
	}
	add("filter_in", res.RawUDP, metrics.L("transport", "udp"))
	add("filter_in", res.RawTCP, metrics.L("transport", "tcp"))
	add("filter_rtc", res.RTCUDP, metrics.L("transport", "udp"))
	add("filter_rtc", res.RTCTCP, metrics.L("transport", "tcp"))
	for _, s := range res.RemovedStreams {
		rm := res.Removed[s.Key]
		stage := "1"
		if rm.Stage == 2 {
			stage = "2"
		}
		labels := []metrics.Label{
			metrics.L("stage", stage),
			metrics.L("rule", ruleSlug(rm.Rule)),
		}
		reg.Counter("filter_removed_streams_total", labels...).Inc()
		reg.Counter("filter_removed_packets_total", labels...).Add(uint64(s.NPackets))
		reg.Counter("filter_removed_bytes_total", labels...).Add(uint64(s.Bytes))
	}
}

func tally(udp, tcp *flow.Counts, streams []*flow.Stream) {
	var u, t []*flow.Stream
	for _, s := range streams {
		if s.Key.Proto == layers.IPProtocolTCP {
			t = append(t, s)
		} else {
			u = append(u, s)
		}
	}
	*udp = flow.Count(u)
	*tcp = flow.Count(t)
}

// outsideWindowTuples collects destination 3-tuples observed outside the
// expanded call window (§3.2.2: persistent services rebind source ports
// but keep their destination 3-tuple).
func outsideWindowTuples(table *flow.Table, winStart, winEnd time.Time) map[flow.ThreeTuple]bool {
	out := make(map[flow.ThreeTuple]bool)
	for _, tt := range table.ThreeTuples() {
		span, ok := table.ThreeTupleSpan(tt)
		if !ok {
			continue
		}
		if span.First.Before(winStart) || span.Last.After(winEnd) {
			out[tt] = true
		}
	}
	return out
}

// preCallAddrPairs collects unordered address pairs seen before the call
// started, used by the local-IP rule to distinguish LAN management
// chatter from legitimate P2P media.
func preCallAddrPairs(streams []*flow.Stream, callStart time.Time) map[[2]netip.Addr]bool {
	out := make(map[[2]netip.Addr]bool)
	for _, s := range streams {
		if !s.FirstSeen.Before(callStart) {
			continue
		}
		out[PairKey(s.Key.A.Addr, s.Key.B.Addr)] = true
	}
	return out
}

// PairKey returns the canonical (sorted) form of an unordered address
// pair, the key of the pre-call pair set.
func PairKey(a, b netip.Addr) [2]netip.Addr {
	if b.Compare(a) < 0 {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// stage2Check applies the four intra-call heuristics in the paper's
// order.
func stage2Check(s *flow.Stream, outsideTuples map[flow.ThreeTuple]bool, preCallPairs map[[2]netip.Addr]bool, blocklist []string, sniOf func(*flow.Stream) (string, bool)) (Removal, bool) {
	// 1. 3-tuple timing: any packet destination matching a 3-tuple seen
	// outside the window. DstTuples is the distinct destinations in
	// first-occurrence order, so the first match here is the same tuple
	// the first matching packet would have reported.
	for _, tt := range s.DstTuples {
		if outsideTuples[tt] {
			return Removal{Stage: 2, Rule: RuleThreeTuple,
				Detail: "destination 3-tuple " + tt.String() + " active outside the call window"}, true
		}
	}
	// 2. TLS SNI blocklist (TCP streams only).
	if s.Key.Proto == layers.IPProtocolTCP {
		if sni, ok := sniOf(s); ok && MatchesBlocklist(sni, blocklist) {
			return Removal{Stage: 2, Rule: RuleSNI, Detail: "SNI " + sni + " is blocklisted"}, true
		}
	}
	// 3. Local IP: link-local/unique-local/private endpoints whose pair
	// also appeared pre-call.
	if IsLocalScope(s.Key.A.Addr) || IsLocalScope(s.Key.B.Addr) {
		if preCallPairs[PairKey(s.Key.A.Addr, s.Key.B.Addr)] {
			return Removal{Stage: 2, Rule: RuleLocalIP,
				Detail: "local address pair also active pre-call"}, true
		}
	}
	// 4. Port-based exclusion.
	if NonRTCPorts[s.Key.A.Port] || NonRTCPorts[s.Key.B.Port] {
		return Removal{Stage: 2, Rule: RulePort, Detail: "well-known non-RTC port"}, true
	}
	return Removal{}, false
}

// streamSNI extracts the SNI from the first ClientHello found in the
// stream's segments.
func streamSNI(s *flow.Stream) (string, bool) {
	for _, p := range s.Packets {
		if len(p.Payload) == 0 {
			continue
		}
		if sni, err := tlsinspect.SNI(p.Payload); err == nil {
			return sni, true
		}
	}
	return "", false
}

// MatchesBlocklist reports whether sni matches a blocklist entry
// exactly or as a parent domain.
func MatchesBlocklist(sni string, blocklist []string) bool {
	for _, d := range blocklist {
		if sni == d || strings.HasSuffix(sni, "."+d) {
			return true
		}
	}
	return false
}

// IsLocalScope reports whether an address is IPv6 link-local
// (fe80::/10), unique-local (fc00::/7), IPv4 private, or multicast —
// the scopes §3.2.2's local-IP rule targets.
func IsLocalScope(a netip.Addr) bool {
	return a.IsLinkLocalUnicast() || a.IsLinkLocalMulticast() || a.IsMulticast() ||
		a.IsPrivate()
}
