package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// engineMetrics holds the resolved instrument handles for one
// InspectStream run. The zero value (nil registry) is inert: every
// handle is nil and every operation a no-op, so the per-datagram cost
// of disabled metrics is a handful of nil-receiver branches.
type engineMetrics struct {
	// classes is indexed by Class.
	classes [3]*metrics.Counter
	// messages is indexed by Protocol (unregistered IDs stay nil).
	messages [proto.MaxIDs]*metrics.Counter
	attempts *metrics.Counter
	latency  *metrics.Histogram
}

func (e *Engine) metricsHandles() engineMetrics {
	r := e.Metrics
	if r == nil {
		return engineMetrics{}
	}
	var m engineMetrics
	m.classes[ClassFullyProprietary] = r.Counter("dpi_datagrams_total", metrics.L("class", "fully_proprietary"))
	m.classes[ClassStandard] = r.Counter("dpi_datagrams_total", metrics.L("class", "standard"))
	m.classes[ClassProprietaryHeader] = r.Counter("dpi_datagrams_total", metrics.L("class", "proprietary_header"))
	for _, meta := range e.registry().Metas() {
		m.messages[meta.ID] = r.Counter("dpi_messages_total", metrics.L("proto", meta.Slug))
	}
	m.attempts = r.Counter("dpi_offset_shift_attempts_total")
	m.latency = r.Histogram("dpi_inspect_seconds", nil)
	return m
}
