# Build/test entry points, mirrored by .github/workflows/ci.yml.
GO       ?= go
FUZZTIME ?= 5s

.PHONY: all vet build test race fuzz-smoke bench ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly against its seed corpus plus a short
# mutation budget. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzInspect -fuzztime=$(FUZZTIME) ./internal/dpi
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChannelData -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCompound -fuzztime=$(FUZZTIME) ./internal/rtcp

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

ci: vet build race fuzz-smoke
