// Package mutate generates malformed variants of RTC protocol messages
// for fuzz-testing protocol stacks — one of the downstream uses the
// paper names for its released framework ("fuzz testing, and deployment
// diagnostics").
//
// The strategies are informed by the deviations the paper observed in
// production: undefined types and attributes, corrupted length fields,
// proprietary prefixes, truncation, and duplication. A seeded Fuzzer
// applies them deterministically, so a corpus is reproducible from its
// seed.
package mutate

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
)

// Strategy names one mutation class.
type Strategy string

// Mutation strategies.
const (
	// StrategyBitFlip flips 1-8 random bits.
	StrategyBitFlip Strategy = "bit-flip"
	// StrategyTruncate cuts the message at a random point.
	StrategyTruncate Strategy = "truncate"
	// StrategyLengthCorrupt rewrites a plausible length field (bytes
	// 2-3, where STUN, ChannelData, and RTCP keep theirs).
	StrategyLengthCorrupt Strategy = "length-corrupt"
	// StrategyTypeSwap replaces the leading type field with an
	// undefined value (the WhatsApp 0x0800 pattern).
	StrategyTypeSwap Strategy = "type-swap"
	// StrategyPrefix prepends a proprietary header (the Zoom/FaceTime
	// pattern).
	StrategyPrefix Strategy = "proprietary-prefix"
	// StrategyAppendTrailer appends 1-4 trailer bytes (the Discord
	// pattern).
	StrategyAppendTrailer Strategy = "append-trailer"
	// StrategyInjectTLV splices an undefined TLV attribute into the
	// body (the undefined-attribute pattern).
	StrategyInjectTLV Strategy = "inject-tlv"
	// StrategyDuplicate concatenates the message with itself (the
	// multiple-messages-per-datagram pattern).
	StrategyDuplicate Strategy = "duplicate"
	// StrategyZeroRegion zeroes a random span.
	StrategyZeroRegion Strategy = "zero-region"
)

// Strategies lists every strategy in a stable order.
var Strategies = []Strategy{
	StrategyBitFlip, StrategyTruncate, StrategyLengthCorrupt,
	StrategyTypeSwap, StrategyPrefix, StrategyAppendTrailer,
	StrategyInjectTLV, StrategyDuplicate, StrategyZeroRegion,
}

// Fuzzer applies seeded mutations.
type Fuzzer struct {
	rng *rand.Rand
	// Allowed restricts the strategy set; empty means all.
	Allowed []Strategy
}

// New returns a deterministic fuzzer.
func New(seed uint64) *Fuzzer {
	return &Fuzzer{rng: rand.New(rand.NewPCG(seed, seed^0xfeedface))}
}

func (f *Fuzzer) pick() Strategy {
	set := f.Allowed
	if len(set) == 0 {
		set = Strategies
	}
	return set[f.rng.IntN(len(set))]
}

// Mutate produces one mutated copy of msg (the input is never
// modified) along with the strategy used. Empty inputs are returned
// unchanged with an empty strategy.
func (f *Fuzzer) Mutate(msg []byte) ([]byte, Strategy) {
	if len(msg) == 0 {
		return nil, ""
	}
	s := f.pick()
	return f.Apply(s, msg), s
}

// Apply runs one named strategy.
func (f *Fuzzer) Apply(s Strategy, msg []byte) []byte {
	out := make([]byte, len(msg))
	copy(out, msg)
	switch s {
	case StrategyBitFlip:
		n := 1 + f.rng.IntN(8)
		for i := 0; i < n; i++ {
			out[f.rng.IntN(len(out))] ^= 1 << f.rng.IntN(8)
		}
	case StrategyTruncate:
		if len(out) > 1 {
			out = out[:1+f.rng.IntN(len(out)-1)]
		}
	case StrategyLengthCorrupt:
		if len(out) >= 4 {
			binary.BigEndian.PutUint16(out[2:4], uint16(f.rng.IntN(1<<16)))
		}
	case StrategyTypeSwap:
		if len(out) >= 2 {
			binary.BigEndian.PutUint16(out[0:2], 0x0800|uint16(f.rng.IntN(16)))
		}
	case StrategyPrefix:
		hdr := make([]byte, 4+f.rng.IntN(28))
		for i := range hdr {
			hdr[i] = byte(f.rng.IntN(256))
		}
		out = append(hdr, out...)
	case StrategyAppendTrailer:
		n := 1 + f.rng.IntN(4)
		for i := 0; i < n; i++ {
			out = append(out, byte(f.rng.IntN(256)))
		}
	case StrategyInjectTLV:
		tlv := make([]byte, 8)
		binary.BigEndian.PutUint16(tlv[0:2], 0x4000|uint16(f.rng.IntN(16)))
		binary.BigEndian.PutUint16(tlv[2:4], 4)
		binary.BigEndian.PutUint32(tlv[4:8], f.rng.Uint32())
		pos := f.rng.IntN(len(out) + 1)
		out = append(out[:pos:pos], append(tlv, out[pos:]...)...)
	case StrategyDuplicate:
		out = append(out, out...)
	case StrategyZeroRegion:
		start := f.rng.IntN(len(out))
		end := start + 1 + f.rng.IntN(len(out)-start)
		for i := start; i < end; i++ {
			out[i] = 0
		}
	default:
		panic(fmt.Sprintf("mutate: unknown strategy %q", s))
	}
	return out
}

// Corpus expands seed messages into n mutated variants, cycling seeds
// and strategies deterministically.
func (f *Fuzzer) Corpus(seeds [][]byte, n int) [][]byte {
	if len(seeds) == 0 || n <= 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m, _ := f.Mutate(seeds[i%len(seeds)])
		out = append(out, m)
	}
	return out
}
