package report

import (
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)

func checked(proto dpi.Protocol, label string, compliant bool, reason string, bytes int) compliance.Checked {
	v := compliance.Verdict{Compliant: true}
	if !compliant {
		v = compliance.Verdict{Failed: compliance.CritAttrType, Reason: reason}
	}
	return compliance.Checked{
		Protocol:  proto,
		Type:      compliance.TypeKey{Protocol: proto.Family(), Label: label},
		Verdict:   v,
		Bytes:     bytes,
		Timestamp: time.Unix(0, 0),
	}
}

func sampleAggregate() *Aggregate {
	g := NewAggregate()
	a := g.App("AppA")
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 100))
	a.AddChecked(checked(dpi.ProtoRTP, "96", true, "", 100))
	a.AddChecked(checked(dpi.ProtoRTP, "97", false, "bad ext", 100))
	a.AddChecked(checked(dpi.ProtoSTUN, "0x0001", true, "", 50))
	a.AddChecked(checked(dpi.ProtoChannelData, "ChannelData", true, "", 60))
	a.AddDatagram(dpi.ClassStandard)
	a.AddDatagram(dpi.ClassStandard)
	a.AddDatagram(dpi.ClassFullyProprietary)

	b := g.App("AppB")
	b.AddChecked(checked(dpi.ProtoRTCP, "200", false, "trailer", 80))
	b.AddChecked(checked(dpi.ProtoQUIC, "short header", true, "", 120))
	b.AddDatagram(dpi.ClassProprietaryHeader)
	return g
}

func TestVolumeCompliance(t *testing.T) {
	g := sampleAggregate()
	a := g.App("AppA")
	r, ok := a.VolumeCompliance()
	if !ok {
		t.Fatal("no ratio")
	}
	// 4 compliant of 5 messages.
	if r != 0.8 {
		t.Errorf("ratio = %v, want 0.8", r)
	}
	empty := NewAppStats("x")
	if _, ok := empty.VolumeCompliance(); ok {
		t.Error("empty stats produced a ratio")
	}
}

func TestMessageUnits(t *testing.T) {
	a := sampleAggregate().App("AppA")
	// 5 messages + 1 fully proprietary datagram.
	if got := a.MessageUnits(); got != 6 {
		t.Errorf("units = %d, want 6", got)
	}
}

func TestTypeCompliance(t *testing.T) {
	a := sampleAggregate().App("AppA")
	c, tot := a.TypeCompliance(dpi.ProtoRTP)
	if c != 1 || tot != 2 {
		t.Errorf("RTP types = %d/%d, want 1/2", c, tot)
	}
	// ChannelData folds into the STUN family.
	c, tot = a.TypeCompliance(dpi.ProtoSTUN)
	if c != 2 || tot != 2 {
		t.Errorf("STUN types = %d/%d, want 2/2", c, tot)
	}
	// All families.
	c, tot = a.TypeCompliance(dpi.ProtoUnknown)
	if c != 3 || tot != 4 {
		t.Errorf("all types = %d/%d, want 3/4", c, tot)
	}
}

func TestTypesOfSorted(t *testing.T) {
	a := sampleAggregate().App("AppA")
	comp, non := a.TypesOf(dpi.ProtoRTP)
	if len(comp) != 1 || comp[0] != "96" {
		t.Errorf("compliant = %v", comp)
	}
	if len(non) != 1 || non[0] != "97" {
		t.Errorf("non-compliant = %v", non)
	}
}

func TestProtocolRollup(t *testing.T) {
	g := sampleAggregate()
	vol, c, tot := g.ProtocolRollup(dpi.ProtoRTP)
	if vol.Messages != 3 || vol.Compliant != 2 {
		t.Errorf("rollup vol = %+v", vol)
	}
	if c != 1 || tot != 2 {
		t.Errorf("rollup types = %d/%d", c, tot)
	}
	volQ, _, _ := g.ProtocolRollup(dpi.ProtoQUIC)
	if volQ.Messages != 1 || volQ.Compliant != 1 {
		t.Errorf("quic rollup = %+v", volQ)
	}
}

func TestAppsOrderStable(t *testing.T) {
	g := sampleAggregate()
	apps := g.Apps()
	if len(apps) != 2 || apps[0].App != "AppA" || apps[1].App != "AppB" {
		t.Errorf("order = %v, %v", apps[0].App, apps[1].App)
	}
}

func TestRenderersContainExpectedCells(t *testing.T) {
	g := sampleAggregate()

	t2 := Table2(g)
	if !strings.Contains(t2, "AppA") || !strings.Contains(t2, "Fully Proprietary") {
		t.Errorf("table2:\n%s", t2)
	}
	// AppA: 5 messages of 6 units -> RTP 3/6 = 50.0%.
	if !strings.Contains(t2, "50.0%") {
		t.Errorf("table2 missing RTP share:\n%s", t2)
	}

	f3 := Figure3(g)
	if !strings.Contains(f3, "66.7%") { // 2 standard of 3 datagrams
		t.Errorf("figure3:\n%s", f3)
	}

	f4 := Figure4(g)
	if !strings.Contains(f4, "80.0%") {
		t.Errorf("figure4 missing AppA ratio:\n%s", f4)
	}

	t3 := Table3(g)
	if !strings.Contains(t3, "1/2") || !strings.Contains(t3, "All Apps") {
		t.Errorf("table3:\n%s", t3)
	}

	t4 := Table4(g)
	if !strings.Contains(t4, "ChannelData") || !strings.Contains(t4, "0x0001") {
		t.Errorf("table4:\n%s", t4)
	}
	// AppB has no STUN types and must be omitted from Table 4.
	if strings.Contains(t4, "AppB") {
		t.Errorf("table4 contains AppB:\n%s", t4)
	}

	t5 := Table5(g)
	if !strings.Contains(t5, "96") || !strings.Contains(t5, "97") {
		t.Errorf("table5:\n%s", t5)
	}

	t6 := Table6(g)
	if !strings.Contains(t6, "200") {
		t.Errorf("table6:\n%s", t6)
	}

	f5 := Figure5(g)
	if !strings.Contains(f5, "QUIC") || !strings.Contains(f5, "100.0%") {
		t.Errorf("figure5:\n%s", f5)
	}

	v := Violations(g)
	if !strings.Contains(v, "attribute type validity") || !strings.Contains(v, "bad ext") {
		t.Errorf("violations:\n%s", v)
	}
}

func TestTable1Rendering(t *testing.T) {
	rows := []Table1Row{{
		App:         "AppA",
		VolumeBytes: 2_500_000,
		RawUDP:      flow.Counts{Streams: 10, Packets: 1000},
		RawTCP:      flow.Counts{Streams: 5, Packets: 200},
		Stage1UDP:   flow.Counts{Streams: 3, Packets: 30},
		Stage2UDP:   flow.Counts{Streams: 2, Packets: 20},
		RTCUDP:      flow.Counts{Streams: 5, Packets: 950},
		RTCTCP:      flow.Counts{Streams: 1, Packets: 50},
	}}
	out := Table1(rows)
	for _, want := range []string{"AppA", "2.5", "10 | 1000", "5 | 950"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestPctAndRatioEdgeCases(t *testing.T) {
	if pct(1, 0) != "N/A" {
		t.Error("pct(1,0)")
	}
	if pct(1, 4) != "25.0%" {
		t.Errorf("pct = %s", pct(1, 4))
	}
	if ratio(0, 0) != "N/A" || ratio(3, 4) != "3/4" {
		t.Error("ratio formatting")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.addRow("xxxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator length mismatch:\n%s", out)
	}
}
