// Package natsim models NAT behaviour, firewall hole-punching policy,
// and TURN-style relay allocation.
//
// The paper controls transmission mode (§3.1.1) by toggling UDP hole
// punching on the Wi-Fi router, and observes that cellular carriers
// decide it for them. This package is the equivalent substrate: each
// client sits behind a NAT with configurable mapping and filtering
// behaviour (RFC 4787 terminology), and the call orchestrator runs an
// ICE-style probe simulation to decide whether a direct path exists. If
// not, media is routed through a Relay, which hands out relayed
// addresses like a TURN server's Allocate.
package natsim

import (
	"fmt"
	"net/netip"
	"sync"
)

// Behavior classifies NAT mapping or filtering per RFC 4787.
type Behavior int

// RFC 4787 behaviours. EndpointIndependent corresponds to "full cone"
// style NATs; AddressAndPortDependent mapping is the classic "symmetric"
// NAT that defeats hole punching when present on both sides.
const (
	EndpointIndependent Behavior = iota
	AddressDependent
	AddressAndPortDependent
)

func (b Behavior) String() string {
	switch b {
	case EndpointIndependent:
		return "endpoint-independent"
	case AddressDependent:
		return "address-dependent"
	case AddressAndPortDependent:
		return "address-and-port-dependent"
	}
	return fmt.Sprintf("Behavior(%d)", int(b))
}

// mapKey identifies an outbound mapping. For endpoint-independent
// mapping the remote fields are zeroed; for address-dependent mapping
// the remote port is zeroed.
type mapKey struct {
	internal netip.AddrPort
	remote   netip.AddrPort
}

// NAT is one network address translator.
type NAT struct {
	// Public is the NAT's external address.
	Public netip.Addr
	// Mapping controls external port reuse across destinations.
	Mapping Behavior
	// Filtering controls which inbound packets pass.
	Filtering Behavior
	// BlockInboundUDP models the paper's router-firewall toggle: when
	// set, no inbound UDP passes regardless of pinholes, forcing relay
	// mode.
	BlockInboundUDP bool

	nextPort uint16
	mappings map[mapKey]uint16
	// pinholes records (externalPort, remote) pairs opened by outbound
	// traffic, for filtering decisions.
	pinholes map[pinKey]bool
}

type pinKey struct {
	extPort uint16
	remote  netip.AddrPort
}

// NewNAT returns a NAT with the given public address and behaviour.
func NewNAT(public netip.Addr, mapping, filtering Behavior) *NAT {
	return &NAT{
		Public:    public,
		Mapping:   mapping,
		Filtering: filtering,
		nextPort:  40000,
		mappings:  make(map[mapKey]uint16),
		pinholes:  make(map[pinKey]bool),
	}
}

func (n *NAT) mapKeyFor(internal, remote netip.AddrPort) mapKey {
	switch n.Mapping {
	case EndpointIndependent:
		return mapKey{internal: internal}
	case AddressDependent:
		return mapKey{internal: internal, remote: netip.AddrPortFrom(remote.Addr(), 0)}
	default:
		return mapKey{internal: internal, remote: remote}
	}
}

// Outbound translates an outbound packet from the internal endpoint to
// the remote endpoint, returning the external (public) source address
// the remote will see. It opens the corresponding pinholes.
func (n *NAT) Outbound(internal, remote netip.AddrPort) netip.AddrPort {
	key := n.mapKeyFor(internal, remote)
	port, ok := n.mappings[key]
	if !ok {
		port = n.nextPort
		n.nextPort++
		n.mappings[key] = port
	}
	n.pinholes[pinKey{extPort: port, remote: remote}] = true
	return netip.AddrPortFrom(n.Public, port)
}

// InboundAllowed reports whether an inbound packet from remote to the
// NAT's external port passes the filtering policy.
func (n *NAT) InboundAllowed(extPort uint16, remote netip.AddrPort) bool {
	if n.BlockInboundUDP {
		return false
	}
	switch n.Filtering {
	case EndpointIndependent:
		// Any remote may reach an allocated port.
		for pk := range n.pinholes {
			if pk.extPort == extPort {
				return true
			}
		}
		return false
	case AddressDependent:
		for pk := range n.pinholes {
			if pk.extPort == extPort && pk.remote.Addr() == remote.Addr() {
				return true
			}
		}
		return false
	default:
		return n.pinholes[pinKey{extPort: extPort, remote: remote}]
	}
}

// MappedAddress reports the external address a STUN server at stunServer
// would observe for internal, without opening extra state beyond the
// outbound binding request it models.
func (n *NAT) MappedAddress(internal, stunServer netip.AddrPort) netip.AddrPort {
	return n.Outbound(internal, stunServer)
}

// Client is one endpoint participating in hole punching.
type Client struct {
	// Internal is the client's private socket address.
	Internal netip.AddrPort
	// NAT is the translator in front of the client; nil means a public
	// address (no NAT).
	NAT *NAT
}

// PublicCandidate returns the server-reflexive candidate the client
// learns from a STUN server.
func (c *Client) PublicCandidate(stunServer netip.AddrPort) netip.AddrPort {
	if c.NAT == nil {
		return c.Internal
	}
	return c.NAT.MappedAddress(c.Internal, stunServer)
}

// HolePunch simulates ICE-style simultaneous connectivity checks between
// two clients. Each learns the other's server-reflexive candidate from
// stunServer, then both send probes to that candidate. A direct path
// exists if, after both sides have sent at least one outbound probe
// (opening pinholes), a probe in each direction passes the remote NAT's
// filtering using the mapping the remote actually allocated toward this
// peer.
func HolePunch(a, b *Client, stunServer netip.AddrPort) bool {
	aCand := a.PublicCandidate(stunServer)
	bCand := b.PublicCandidate(stunServer)

	// Each side now sends probes to the other's candidate. The source
	// mapping used toward the peer may differ from the candidate when
	// mapping is not endpoint-independent — that is exactly why
	// symmetric NATs break hole punching.
	aToB := aCand
	if a.NAT != nil {
		aToB = a.NAT.Outbound(a.Internal, bCand)
	}
	bToA := bCand
	if b.NAT != nil {
		bToA = b.NAT.Outbound(b.Internal, aCand)
	}

	// Probe from A arrives at B's NAT: destination is bCand (the
	// address A knows), source is aToB.
	aReachesB := true
	if b.NAT != nil {
		aReachesB = b.NAT.InboundAllowed(bCand.Port(), aToB)
	}
	// And symmetrically. A's pinhole is open toward bCand; B's probe
	// arrives from bToA at the port of aCand.
	bReachesA := true
	if a.NAT != nil {
		bReachesA = a.NAT.InboundAllowed(aCand.Port(), bToA)
	}
	// Second round: when a probe got through in one direction, the
	// receiver learns the sender's actual source (a peer-reflexive
	// candidate, in ICE terms) and answers to it instead of the stale
	// server-reflexive candidate. This is what makes one symmetric NAT
	// survivable when the other side's filtering is permissive.
	if aReachesB && !bReachesA {
		target := aToB
		reply := target
		if b.NAT != nil {
			reply = b.NAT.Outbound(b.Internal, target)
		}
		bReachesA = true
		if a.NAT != nil {
			bReachesA = a.NAT.InboundAllowed(target.Port(), reply)
		}
	} else if bReachesA && !aReachesB {
		target := bToA
		reply := target
		if a.NAT != nil {
			reply = a.NAT.Outbound(a.Internal, target)
		}
		aReachesB = true
		if b.NAT != nil {
			aReachesB = b.NAT.InboundAllowed(target.Port(), reply)
		}
	}
	return aReachesB && bReachesA
}

// Relay models a TURN server handing out relayed transport addresses.
// It is safe for concurrent use: Allocate and Allocations may be called
// from multiple goroutines, as the impairment race-hammer tests do.
type Relay struct {
	// Addr is the relay's public IP.
	Addr netip.Addr
	// ListenPort is the TURN port clients talk to (3478 by default).
	ListenPort uint16

	mu            sync.Mutex
	nextRelayPort uint16
	allocations   map[netip.AddrPort]netip.AddrPort
}

// NewRelay returns a relay at addr listening on port 3478.
func NewRelay(addr netip.Addr) *Relay {
	return &Relay{
		Addr:          addr,
		ListenPort:    3478,
		nextRelayPort: 49152,
		allocations:   make(map[netip.AddrPort]netip.AddrPort),
	}
}

// ListenAddr returns the relay's client-facing address.
func (r *Relay) ListenAddr() netip.AddrPort {
	return netip.AddrPortFrom(r.Addr, r.ListenPort)
}

// Allocate returns (idempotently) a relayed transport address for the
// given client 5-tuple source, as a TURN Allocate request would.
func (r *Relay) Allocate(client netip.AddrPort) netip.AddrPort {
	r.mu.Lock()
	defer r.mu.Unlock()
	if relayed, ok := r.allocations[client]; ok {
		return relayed
	}
	relayed := netip.AddrPortFrom(r.Addr, r.nextRelayPort)
	r.nextRelayPort++
	r.allocations[client] = relayed
	return relayed
}

// Allocations reports the number of active allocations.
func (r *Relay) Allocations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.allocations)
}
