package stun

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMessageTypePacking(t *testing.T) {
	cases := []struct {
		method Method
		class  Class
		want   MessageType
	}{
		{MethodBinding, ClassRequest, 0x0001},
		{MethodBinding, ClassIndication, 0x0011},
		{MethodBinding, ClassSuccess, 0x0101},
		{MethodBinding, ClassError, 0x0111},
		{MethodAllocate, ClassRequest, 0x0003},
		{MethodAllocate, ClassSuccess, 0x0103},
		{MethodAllocate, ClassError, 0x0113},
		{MethodRefresh, ClassRequest, 0x0004},
		{MethodSend, ClassIndication, 0x0016},
		{MethodData, ClassIndication, 0x0017},
		{MethodCreatePermission, ClassRequest, 0x0008},
		{MethodCreatePermission, ClassSuccess, 0x0108},
		{MethodCreatePermission, ClassError, 0x0118},
		{MethodChannelBind, ClassRequest, 0x0009},
		{MethodChannelBind, ClassSuccess, 0x0109},
		{MethodGoogPing, ClassRequest, 0x0200},
		{MethodGoogPing, ClassSuccess, 0x0300},
	}
	for _, tc := range cases {
		if got := MessageTypeOf(tc.method, tc.class); got != tc.want {
			t.Errorf("MessageTypeOf(%#x, %v) = %#04x, want %#04x", tc.method, tc.class, uint16(got), uint16(tc.want))
		}
		if got := tc.want.Method(); got != tc.method {
			t.Errorf("%#04x.Method() = %#x, want %#x", uint16(tc.want), got, tc.method)
		}
		if got := tc.want.Class(); got != tc.class {
			t.Errorf("%#04x.Class() = %v, want %v", uint16(tc.want), got, tc.class)
		}
	}
}

// Property: method/class pack-unpack is the identity for all valid
// methods and classes.
func TestQuickTypePackingIdentity(t *testing.T) {
	f := func(m uint16, c uint8) bool {
		method := Method(m & 0x0fff)
		class := Class(c & 0b11)
		mt := MessageTypeOf(method, class)
		return uint16(mt)&0xc000 == 0 && mt.Method() == method && mt.Class() == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func txid(seed byte) [12]byte {
	var id [12]byte
	for i := range id {
		id[i] = seed + byte(i)
	}
	return id
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{Type: TypeBindingRequest, TransactionID: txid(7)}
	m.Add(AttrUsername, []byte("alice:bob"))
	m.Add(AttrPriority, []byte{0x6e, 0x00, 0x1e, 0xff})
	raw := m.Encode()

	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeBindingRequest {
		t.Errorf("Type = %v", got.Type)
	}
	if got.Classic {
		t.Error("message with magic cookie decoded as classic")
	}
	if got.TransactionID != txid(7) {
		t.Errorf("txid = %x", got.TransactionID)
	}
	if len(got.Attributes) != 2 {
		t.Fatalf("%d attributes", len(got.Attributes))
	}
	if got.Attributes[0].Type != AttrUsername || string(got.Attributes[0].Value) != "alice:bob" {
		t.Errorf("attr 0 = %v %q", got.Attributes[0].Type, got.Attributes[0].Value)
	}
	// "alice:bob" is 9 bytes -> padded to 12; declared length stays 9.
	if got.Attributes[0].DeclaredLen != 9 {
		t.Errorf("declared len = %d", got.Attributes[0].DeclaredLen)
	}
	if got.DecodedLen() != len(raw) {
		t.Errorf("DecodedLen = %d, want %d", got.DecodedLen(), len(raw))
	}
}

func TestClassicModeRoundTrip(t *testing.T) {
	m := &Message{
		Type:          TypeBindingRequest,
		Classic:       true,
		CookieWord:    0xDEADBEEF, // first 32 bits of a 128-bit RFC 3489 txid
		TransactionID: txid(1),
	}
	m.Add(AttrType(0x0101), bytes.Repeat([]byte("1234567890"), 2))
	raw := m.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Classic {
		t.Error("classic message not detected")
	}
	if got.CookieWord != 0xDEADBEEF {
		t.Errorf("cookie word = %#x", got.CookieWord)
	}
	if a := got.Get(AttrType(0x0101)); a == nil || len(a.Value) != 20 {
		t.Error("undefined attribute lost in classic round trip")
	}
}

func TestDecodeUndefinedTypesAndAttrs(t *testing.T) {
	// The WhatsApp 0x0801 case: undefined type and attributes must parse.
	m := &Message{Type: MessageType(0x0801), TransactionID: txid(3)}
	m.Add(AttrType(0x4003), []byte{0xff})
	m.Add(AttrType(0x4004), make([]byte, 444))
	raw := m.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MessageType(0x0801) {
		t.Errorf("Type = %v", got.Type)
	}
	if got.Get(AttrType(0x4004)) == nil {
		t.Error("undefined attribute 0x4004 not parsed")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := (&Message{Type: TypeBindingRequest, TransactionID: txid(0)}).Encode()

	t.Run("short header", func(t *testing.T) {
		if _, err := Decode(valid[:10]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("top bits set", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[0] = 0x80
		if _, err := Decode(bad); !errors.Is(err, ErrNotSTUN) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("declared length exceeds buffer", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[2], bad[3] = 0x01, 0x00
		if _, err := Decode(bad); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("attribute overruns declared length", func(t *testing.T) {
		m := &Message{Type: TypeBindingRequest, TransactionID: txid(0)}
		m.Add(AttrUsername, []byte("abcd"))
		raw := m.Encode()
		// Corrupt the attribute's length to overrun.
		raw[HeaderLen+2] = 0xff
		if _, err := Decode(raw); !errors.Is(err, ErrBadAttribute) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("trailing bytes in attribute region", func(t *testing.T) {
		m := &Message{Type: TypeBindingRequest, TransactionID: txid(0)}
		raw := m.Encode()
		raw = append(raw, 0xaa, 0xbb) // 2 stray bytes
		raw[2], raw[3] = 0x00, 0x02   // declared length 2: not a full TLV
		// Length%4 != 0 is caught by attribute walk leaving remainder.
		if _, err := Decode(raw); !errors.Is(err, ErrBadAttribute) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestLooksLikeHeader(t *testing.T) {
	valid := (&Message{Type: TypeBindingRequest, TransactionID: txid(0)}).Encode()
	if !LooksLikeHeader(valid) {
		t.Error("valid message rejected")
	}
	if LooksLikeHeader(valid[:19]) {
		t.Error("short buffer accepted")
	}
	rtpLike := append([]byte{0x80, 0x60}, valid[2:]...)
	if LooksLikeHeader(rtpLike) {
		t.Error("first byte with top bits set accepted")
	}
	oddLen := append([]byte{}, valid...)
	oddLen[3] = 3
	if LooksLikeHeader(oddLen) {
		t.Error("length not multiple of 4 accepted")
	}
}

func TestGetReturnsFirstMatch(t *testing.T) {
	m := &Message{Type: TypeBindingRequest}
	m.Add(AttrSoftware, []byte("one"))
	m.Add(AttrSoftware, []byte("two"))
	if a := m.Get(AttrSoftware); a == nil || string(a.Value) != "one" {
		t.Errorf("Get = %v", a)
	}
	if a := m.Get(AttrRealm); a != nil {
		t.Errorf("Get missing = %v", a)
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	m := &Message{Type: TypeBindingRequest, TransactionID: txid(9)}
	raw := m.Encode()
	withTrailer := append(append([]byte{}, raw...), 1, 2, 3, 4, 5)
	got, err := Decode(withTrailer)
	if err != nil {
		t.Fatal(err)
	}
	if got.DecodedLen() != len(raw) {
		t.Errorf("DecodedLen = %d, want %d", got.DecodedLen(), len(raw))
	}
}

// Property: encode→decode is the identity on type, txid and attribute
// values for arbitrary attribute contents.
func TestQuickEncodeDecodeIdentity(t *testing.T) {
	f := func(typeBits uint16, id [12]byte, v1, v2 []byte) bool {
		if len(v1) > 1000 || len(v2) > 1000 {
			return true
		}
		m := &Message{Type: MessageType(typeBits & 0x3fff), TransactionID: id}
		m.Add(AttrType(0x4001), v1)
		m.Add(AttrType(0x8007), v2)
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return got.Type == m.Type &&
			got.TransactionID == id &&
			len(got.Attributes) == 2 &&
			bytes.Equal(got.Attributes[0].Value, v1) &&
			bytes.Equal(got.Attributes[1].Value, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics and never reads past its input for
// arbitrary bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		m, err := Decode(b)
		if err == nil && m.DecodedLen() > len(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestChannelDataRoundTrip(t *testing.T) {
	cd := &ChannelData{ChannelNumber: 0x4001, Data: []byte("media payload")}
	raw := cd.Encode()
	if !LooksLikeChannelData(raw) {
		t.Error("LooksLikeChannelData rejected valid frame")
	}
	got, err := DecodeChannelData(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChannelNumber != 0x4001 || !bytes.Equal(got.Data, cd.Data) {
		t.Errorf("round trip = %+v", got)
	}
	if got.DecodedLen() != len(raw) {
		t.Errorf("DecodedLen = %d", got.DecodedLen())
	}
}

func TestChannelDataRejects(t *testing.T) {
	if _, err := DecodeChannelData([]byte{0x40}); !errors.Is(err, ErrTruncated) {
		t.Error("short frame accepted")
	}
	if _, err := DecodeChannelData([]byte{0x3f, 0xff, 0x00, 0x00}); !errors.Is(err, ErrNotSTUN) {
		t.Error("channel below 0x4000 accepted")
	}
	if _, err := DecodeChannelData([]byte{0x80, 0x00, 0x00, 0x00}); !errors.Is(err, ErrNotSTUN) {
		t.Error("channel above 0x7FFF accepted")
	}
	if _, err := DecodeChannelData([]byte{0x40, 0x00, 0x00, 0x09, 0x01}); !errors.Is(err, ErrTruncated) {
		t.Error("overlong declared length accepted")
	}
	if LooksLikeChannelData([]byte{0x40, 0x00, 0x00}) {
		t.Error("LooksLikeChannelData accepted 3 bytes")
	}
}

func TestStringFormatting(t *testing.T) {
	if s := TypeBindingRequest.String(); s != "Binding Request (0x0001)" {
		t.Errorf("String = %q", s)
	}
	if s := MessageType(0x0801).String(); s != "0x0801" {
		t.Errorf("String = %q", s)
	}
	if s := AttrXORMappedAddress.String(); s != "XOR-MAPPED-ADDRESS (0x0020)" {
		t.Errorf("String = %q", s)
	}
	if s := AttrType(0x4003).String(); s != "0x4003" {
		t.Errorf("String = %q", s)
	}
	for c, want := range map[Class]string{
		ClassRequest: "request", ClassIndication: "indication",
		ClassSuccess: "success response", ClassError: "error response",
	} {
		if c.String() != want {
			t.Errorf("Class %d = %q", c, c.String())
		}
	}
}
