package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

// InspectStream runs Algorithm 1 over all datagrams of one transport
// stream, in capture order, with full two-stage validation.
//
// RTP is the one target protocol whose header pattern is weak (any
// version-2 first byte passes), so candidate extraction alone produces
// false positives inside proprietary headers and encrypted payloads.
// The paper's protocol-specific validation resolves this with
// cross-packet heuristics: "valid SSRC ... continuous sequence number
// within the same stream". InspectStream implements that literally:
//
//   - Pass 1 collects every RTP candidate at every offset of every
//     datagram and tallies per-SSRC support;
//   - an SSRC is validated when it appears at least twice with at least
//     one sequence-continuous pair;
//   - Pass 2 re-scans each datagram, accepting strongly-signatured
//     protocols (STUN magic cookie, ChannelData framing, RTCP type
//     range, QUIC) immediately and RTP only for validated SSRCs in
//     sequence order.
//
// Single-datagram Inspect remains available for stateless use, but the
// pipeline always uses InspectStream.
func (e *Engine) InspectStream(payloads [][]byte) []Result {
	validated := e.validateRTPSSRCs(payloads)
	ctx := NewStreamContext()
	ctx.validatedSSRC = validated
	m := e.metricsHandles()
	out := make([]Result, 0, len(payloads))
	for _, p := range payloads {
		start := m.latency.Start()
		r := e.Inspect(p, ctx)
		m.latency.ObserveSince(start)
		m.classes[r.Class].Inc()
		for _, msg := range r.Messages {
			if int(msg.Protocol) < len(m.messages) {
				m.messages[msg.Protocol].Inc()
			}
		}
		out = append(out, r)
	}
	m.attempts.Add(uint64(ctx.shiftAttempts))
	return out
}

// validateRTPSSRCs is pass 1: tally candidate SSRCs and their sequence
// numbers across the stream, then keep those with real support.
func (e *Engine) validateRTPSSRCs(payloads [][]byte) map[uint32]bool {
	limit := e.MaxOffset
	if limit <= 0 {
		limit = 200
	}
	type sighting struct {
		seq uint16
		ts  uint32
	}
	type obs struct {
		sightings []sighting
	}
	cands := make(map[uint32]*obs)
	scratch := NewStreamContext()
	for _, payload := range payloads {
		i := 0
		for i < len(payload) && i <= limit {
			// Strong-signature protocols consume their span so their
			// payloads (e.g. a ChannelData body) are not scanned here;
			// candidate RTP headers advance by one byte because they
			// are not yet trusted.
			if m, ok := matchSTUN(payload[i:], scratch); ok {
				i += m.Length
				continue
			}
			if m, ok := matchChannelData(payload[i:], scratch); ok {
				i += m.Length
				continue
			}
			if m, ok := matchRTCP(payload[i:], scratch); ok {
				i += m.Length
				continue
			}
			b := payload[i:]
			if rtp.LooksLikeHeader(b) && !(b[1] >= 192 && b[1] <= 223) {
				if p, err := rtp.Decode(b); err == nil && p.CSRCCount == 0 {
					o := cands[p.SSRC]
					if o == nil {
						o = &obs{}
						cands[p.SSRC] = o
					}
					o.sightings = append(o.sightings, sighting{p.SequenceNumber, p.Timestamp})
				}
			}
			i++
		}
	}
	validated := make(map[uint32]bool)
	for ssrc, o := range cands {
		if len(o.sightings) < 2 {
			continue
		}
		// An SSRC is validated by one adjacent candidate pair whose
		// sequence numbers are continuous AND whose timestamps advance
		// plausibly. The timestamp condition matters: byte windows that
		// straddle a real RTP header inherit slowly-cycling sequence
		// bytes (so sequence continuity alone can be fooled) but their
		// inherited timestamp field jumps by 2^24 per packet.
		for k := 1; k < len(o.sightings); k++ {
			a, bb := o.sightings[k-1], o.sightings[k]
			if seqClose(a.seq, bb.seq) && tsClose(a.ts, bb.ts) {
				validated[ssrc] = true
				break
			}
		}
	}
	return validated
}
