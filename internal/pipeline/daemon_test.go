package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/live"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/trace"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

// syncBuf is a concurrency-safe log sink for the daemon's out writer.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemonConfig renders a live-source daemon config. Short epoch and
// idle keep the accounting visible to the test quickly.
func daemonConfig(label string, shards int, trendFile string, metricsAddr string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "source:\n  kind: live\n  listen: \"127.0.0.1:0\"\n  idle: 100ms\n  label: %s\n", label)
	fmt.Fprintf(&b, "exec:\n  shards: %d\n  policy: block\n", shards)
	fmt.Fprintf(&b, "daemon:\n  epoch: 250ms\n")
	if trendFile != "" {
		fmt.Fprintf(&b, "  trend_file: %s\n", trendFile)
	}
	if metricsAddr != "" {
		fmt.Fprintf(&b, "sinks:\n  metrics_addr: \"%s\"\n", metricsAddr)
	}
	return b.String()
}

// testFrames generates a small deterministic capture to replay into the
// daemon's collector.
func testFrames(t *testing.T, seed uint64) []pcap.Packet {
	t.Helper()
	cap, err := trace.Generate(trace.CaptureConfig{
		App:          appsim.Zoom,
		Network:      appsim.WiFiP2P,
		Seed:         seed,
		Start:        time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		CallDuration: 2 * time.Second,
		MediaRate:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap.Input().Packets
}

// feedFrames replays frames into the daemon's collector socket, paced
// so the loopback receive buffer never overflows.
func feedFrames(t *testing.T, addr string, frames []pcap.Packet) uint64 {
	t.Helper()
	exp, err := live.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	for i, f := range frames {
		if err := exp.Send(f); err != nil {
			t.Fatal(err)
		}
		if i%25 == 24 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	return uint64(len(frames))
}

// waitFed blocks until the daemon has banked exactly want datagrams.
func waitFed(t *testing.T, d *Daemon, want uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if d.Total().Fed >= want {
			if got := d.Total(); got.Fed != want {
				t.Fatalf("overshot: fed %d, want %d (%+v)", got.Fed, want, got)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for fed=%d, have %+v", want, d.Total())
}

// waitLog blocks until the daemon log contains substr.
func waitLog(t *testing.T, out *syncBuf, substr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(out.String(), substr) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for log %q; log:\n%s", substr, out.String())
}

func startDaemon(t *testing.T, cfgPath string, out *syncBuf) (*Daemon, chan error) {
	t.Helper()
	d, err := NewDaemon(cfgPath, out)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run() }()
	return d, errCh
}

func stopDaemon(t *testing.T, d *Daemon, errCh chan error) {
	t.Helper()
	d.Stop()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain after Stop")
	}
}

// TestDaemonReloadConservation is the SIGHUP-path invariant: a config
// reload mid-stream swaps the session without losing a datagram — the
// cumulative ledger still satisfies fed = analyzed + dropped and equals
// exactly what was delivered, before and after the swap.
func TestDaemonReloadConservation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "daemon.yaml")
	trendPath := filepath.Join(dir, "trend.jsonl")
	if err := os.WriteFile(cfgPath, []byte(daemonConfig("alpha", 1, trendPath, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuf{}
	d, errCh := startDaemon(t, cfgPath, out)
	addr := d.Addr()

	first := feedFrames(t, addr, testFrames(t, 1))
	waitFed(t, d, first)

	// Swap to a sharded config under a new label and keep feeding.
	if err := os.WriteFile(cfgPath, []byte(daemonConfig("beta", 2, trendPath, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	d.Reload()
	waitLog(t, out, "daemon: reloaded config from")

	second := feedFrames(t, addr, testFrames(t, 2))
	waitFed(t, d, first+second)
	stopDaemon(t, d, errCh)

	total := d.Total()
	if total.Fed != first+second {
		t.Fatalf("fed %d, want %d", total.Fed, first+second)
	}
	if total.Fed != total.Analyzed+total.Dropped {
		t.Fatalf("conservation broken: fed %d != analyzed %d + dropped %d",
			total.Fed, total.Analyzed, total.Dropped)
	}
	if total.Dropped != 0 {
		t.Fatalf("block policy must not shed: dropped = %d", total.Dropped)
	}

	// The persisted series carries both labels and per-point conservation.
	store, err := trend.Open(trendPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pts := store.Points()
	if len(pts) < 2 {
		t.Fatalf("want >= 2 trend points, got %d", len(pts))
	}
	var sum uint64
	apps := map[string]bool{}
	for _, p := range pts {
		if p.Fed != p.Analyzed+p.Dropped {
			t.Fatalf("point %v breaks conservation: %+v", p.Time, p)
		}
		sum += p.Fed
		apps[p.App] = true
	}
	if sum != total.Fed {
		t.Fatalf("trend points account for %d datagrams, daemon fed %d", sum, total.Fed)
	}
	if !apps["alpha"] || !apps["beta"] {
		t.Fatalf("want points under both labels, got %v", apps)
	}
}

// TestDaemonReloadFailureKeepsRunning: a broken config on disk must not
// kill the daemon — it logs and keeps the previous config.
func TestDaemonReloadFailureKeepsRunning(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "daemon.yaml")
	if err := os.WriteFile(cfgPath, []byte(daemonConfig("alpha", 1, "", "")), 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuf{}
	d, errCh := startDaemon(t, cfgPath, out)
	addr := d.Addr()

	if err := os.WriteFile(cfgPath, []byte("source:\n  kind: live\n  listen: \":0\"\n  typo_key: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.Reload()
	waitLog(t, out, "daemon: reload failed, keeping previous config")

	// Still alive and still accounting under the old config.
	n := feedFrames(t, addr, testFrames(t, 3))
	waitFed(t, d, n)
	stopDaemon(t, d, errCh)

	total := d.Total()
	if total.Fed != total.Analyzed+total.Dropped {
		t.Fatalf("conservation broken after failed reload: %+v", total)
	}
}

// TestDaemonTrendSurvivesRestart: the persisted series reloads into a
// fresh daemon and is served from /compliance/trend over HTTP.
func TestDaemonTrendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "daemon.yaml")
	trendPath := filepath.Join(dir, "trend.jsonl")
	if err := os.WriteFile(cfgPath, []byte(daemonConfig("alpha", 1, trendPath, "127.0.0.1:0")), 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuf{}
	d, errCh := startDaemon(t, cfgPath, out)
	n := feedFrames(t, d.Addr(), testFrames(t, 4))
	waitFed(t, d, n)
	stopDaemon(t, d, errCh)
	firstRun := len(readTrendFile(t, trendPath))
	if firstRun == 0 {
		t.Fatal("first run left no trend points")
	}

	// Restart: the new process must serve the old points immediately.
	out2 := &syncBuf{}
	d2, errCh2 := startDaemon(t, cfgPath, out2)
	defer stopDaemon(t, d2, errCh2)
	resp, err := http.Get("http://" + d2.MetricsAddr() + "/compliance/trend?app=alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Points []trend.Point `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Points) != firstRun {
		t.Fatalf("restarted daemon serves %d points, first run wrote %d", len(body.Points), firstRun)
	}
}

// TestNewDaemonRejects pins the daemon-specific config validation.
func TestNewDaemonRejects(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct{ name, content, wantErr string }{
		{"pcap-source", "source:\n  kind: pcap\n  path: x.pcap\n", `requires source.kind "live"`},
		{"trace-sink", "source:\n  kind: live\n  listen: \":0\"\nsinks:\n  trace_out: t.jsonl\n", "trace sinks"},
	} {
		path := filepath.Join(dir, tc.name+".yaml")
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := NewDaemon(path, os.Stderr)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: want %q, got %v", tc.name, tc.wantErr, err)
		}
	}
}

func readTrendFile(t *testing.T, path string) []trend.Point {
	t.Helper()
	store, err := trend.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	return store.Points()
}
