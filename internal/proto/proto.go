// Package proto defines the pluggable wire-protocol registry behind the
// measurement pipeline. One protocol is one Handler: a set of
// wire-format probers (Probe for the stream-level pass 1, Validate for
// the offset-shifting pass 2 of Algorithm 1), a Comply judge applying
// the paper's five-criterion model, and metadata (name, family,
// wire-format fingerprint, demultiplexing precedence).
//
// The DPI engine (internal/dpi), the compliance checker
// (internal/compliance), the report tables (internal/report), and the
// behavioural-findings scanners (internal/core) all iterate a Registry
// instead of switching on protocol constants, so adding a protocol is
// one leaf package that registers a Handler — no engine edits.
package proto

import (
	"time"

	"github.com/rtc-compliance/rtcc/internal/quicwire"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// ID identifies a registered protocol. TURN messages share the STUN
// format and are reported as STUN, with ChannelData frames tagged
// ChannelData; reporting folds both into the STUN/TURN family.
type ID uint8

// The registered protocol identifiers. Values are stable: they index
// per-protocol state slots and appear in serialized fixtures.
const (
	Unknown ID = iota
	STUN
	ChannelData
	RTP
	RTCP
	QUIC
	DTLS
)

// MaxIDs bounds the ID space; per-protocol state arrays are this long.
const MaxIDs = 16

// String returns the protocol's registered name ("unknown" when no
// handler with this ID is registered in the default registry).
func (p ID) String() string {
	if m, ok := Default().Meta(p); ok {
		return m.Name
	}
	return "unknown"
}

// Family returns the reporting family the protocol folds into
// (ChannelData reports under STUN/TURN, as the paper's tables do).
// Unregistered IDs are their own family.
func (p ID) Family() ID {
	if m, ok := Default().Meta(p); ok {
		return m.Family
	}
	return p
}

// Meta describes one registered protocol.
type Meta struct {
	// ID is the protocol's stable identifier.
	ID ID
	// Name is the human-readable name the report tables use.
	Name string
	// Slug is the metrics label value.
	Slug string
	// Family is the reporting family the protocol folds into (itself
	// for most protocols; STUN for ChannelData).
	Family ID
	// Order positions the protocol's family among report columns
	// (the paper's order: STUN/TURN, RTP, RTCP, QUIC, then additions).
	Order int
	// Fingerprint is a one-line description of the wire-format
	// signature the probers anchor on, for documentation and the
	// proto-list tooling.
	Fingerprint string
	// Fuzz names the fuzz target covering the protocol's wire parser,
	// as "<package>:<FuzzTarget>". The proto-list golden test fails a
	// registration whose target is missing from the Makefile
	// fuzz-smoke job.
	Fuzz string
}

// Candidate is a candidate message start: a whole datagram payload and
// the byte offset a prober examines. Probers read Payload[Offset:].
type Candidate struct {
	Payload []byte
	Offset  int
	// Length is the span consumed by a successful pass-1 Probe.
	Length int
}

// Bytes returns the payload window starting at the candidate offset.
func (c Candidate) Bytes() []byte { return c.Payload[c.Offset:] }

// Message is one validated protocol message extracted from a datagram.
type Message struct {
	Protocol ID
	// Offset is the byte offset within the UDP payload.
	Offset int
	// Length is the validated message length in bytes.
	Length int

	// Exactly one of the following is set, matching Protocol.
	STUN        *stun.Message
	ChannelData *stun.ChannelData
	RTP         *rtp.Packet
	RTCP        []*rtcp.Packet
	QUIC        *quicwire.Header

	// RTCPTrailing holds bytes after the last RTCP packet in a compound
	// region (SRTCP trailers, proprietary suffixes).
	RTCPTrailing []byte

	// Body holds the decoded form for protocols registered beyond the
	// typed fields above (the DTLS driver stores its record slice here).
	Body any
}

// Prober is one wire-format fingerprint of a protocol. A handler may
// register several (STUN registers the magic-cookie form and the
// classic RFC 3489 form at different precedences).
type Prober struct {
	// ID is the owning protocol, filled in by the registry.
	ID ID
	// Precedence orders probing across all registered fingerprints:
	// lower probes first. The ordering encodes the RFC 5761/7983
	// demultiplexing rules — strong structural signatures (STUN magic
	// cookie, ChannelData framing, the RTCP type range) before weak
	// ones (RTP's version bits).
	Precedence int
	// Pass1 includes the prober in the stream-level pass 1: Probe is
	// called at each not-yet-consumed payload offset.
	Pass1 bool
	// First is the one-byte wire-format fingerprint: it reports
	// whether a candidate starting with byte b could possibly match
	// (RFC 7983-style demultiplexing). It must be a superset of the
	// prober's own acceptance — Probe/Validate still reject fully —
	// and lets the registry build the per-first-byte dispatch tables
	// the scan loops use. Nil means the prober is tried at every
	// offset.
	First func(b byte) bool
	// Probe advances pass 1 at one offset. A prober with a strong
	// signature validates structurally against sc.Scratch and returns
	// the candidate with Length set so the engine skips the span; a
	// weak-signature prober (RTP) tallies validation evidence into sc
	// and returns false. Nil when Pass1 is false.
	Probe func(c Candidate, sc *ScanState) (Candidate, bool)
	// Validate runs the fingerprint plus stream-state validation at one
	// offset during pass 2, returning the extracted message. The engine
	// sets the message's Offset.
	Validate func(c Candidate, st *StreamState) (Message, bool)
}

// Handler is one protocol's registered implementation.
type Handler interface {
	// Meta describes the protocol.
	Meta() Meta
	// Probers returns the protocol's wire-format fingerprints.
	Probers() []Prober
	// Comply judges one extracted message under the five-criterion
	// model, appending one Checked per protocol data unit (an RTCP
	// compound region yields one per packet) to dst and returning the
	// extended slice. The append-style signature lets Session.Check
	// reuse one scratch slice per stream, keeping the per-message
	// compliance path allocation-free.
	Comply(dst []Checked, m Message, ts time.Time, s *Session) []Checked
}

// Accepter is implemented by handlers that post-process an accepted
// message against its full datagram before the engine commits it (the
// RTP driver truncates a message when a strong second candidate starts
// inside its claimed payload, and records sequence state).
type Accepter interface {
	Accept(payload []byte, m Message, st *StreamState) Message
}

// ConsumeProbe adapts a Validate function into the pass-1 Probe shape
// for strong-signature probers: a structural match against the scratch
// state consumes the message's span.
func ConsumeProbe(validate func(Candidate, *StreamState) (Message, bool)) func(Candidate, *ScanState) (Candidate, bool) {
	return func(c Candidate, sc *ScanState) (Candidate, bool) {
		m, ok := validate(c, &sc.Scratch)
		if !ok {
			return c, false
		}
		c.Length = m.Length
		return c, true
	}
}
