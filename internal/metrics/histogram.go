package metrics

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed upper bounds (in seconds) used
// for pipeline latency histograms: a 1-2-5 progression from 1 µs to
// 10 s. Observations above the last bound land in the overflow bucket.
var DefaultLatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2e-1, 5e-1,
	1, 2, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, for latency). Bucket counts and the sum are atomic, so
// concurrent Observe calls from many goroutines are safe and totals
// are scheduling-independent. A nil *Histogram ignores every
// operation.
type Histogram struct {
	// bounds are the inclusive upper bounds, strictly increasing.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the overflow
	// bucket for observations above the final bound.
	counts []atomic.Uint64
	count  atomic.Uint64
	// sum accumulates observations in nanosecond-scale fixed point
	// (value * 1e9) so it can be atomic without a float CAS loop.
	sum atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * 1e9))
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Start returns the current time for a later ObserveSince, or the zero
// time when the histogram is nil — so a disabled pipeline never calls
// time.Now.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since a Start. A zero start
// (nil histogram at Start time) records nothing.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot captures the histogram state. Bucket counts are read
// individually; a snapshot taken during concurrent writes is a
// near-consistent view (each counter is itself exact).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sum.Load()) / 1e9,
		Buckets:    make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		b := Bucket{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.UpperSeconds = h.bounds[i]
		} else {
			b.UpperSeconds = inf
		}
		s.Buckets[i] = b
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// inf marks the overflow bucket's bound in snapshots; JSON cannot
// carry +Inf, so a large sentinel is used instead.
const inf = 1e308

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperSeconds is the bucket's inclusive upper bound.
	UpperSeconds float64 `json:"le"`
	// Count is the number of observations in this bucket (not
	// cumulative).
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	P50        float64  `json:"p50_seconds"`
	P95        float64  `json:"p95_seconds"`
	P99        float64  `json:"p99_seconds"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket where the rank q·count falls,
// assuming observations are uniformly distributed within a bucket.
// The first bucket interpolates from zero; ranks falling in the
// overflow bucket report the last finite bound (the histogram cannot
// resolve beyond it). Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	lower := 0.0
	for i, b := range s.Buckets {
		upper := b.UpperSeconds
		if b.Count > 0 && cum+float64(b.Count) >= target {
			if i == len(s.Buckets)-1 {
				// Overflow bucket: report the last finite bound.
				return lower
			}
			return lower + (upper-lower)*(target-cum)/float64(b.Count)
		}
		cum += float64(b.Count)
		lower = upper
	}
	// Rounding left the target past the last occupied bucket; report
	// the largest finite bound reached.
	if len(s.Buckets) > 1 {
		return s.Buckets[len(s.Buckets)-2].UpperSeconds
	}
	return lower
}
