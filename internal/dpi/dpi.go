// Package dpi implements the paper's two-stage deep packet inspection
// (Algorithm 1): offset-shifting candidate extraction followed by
// protocol-specific validation.
//
// For each UDP datagram payload, the engine slides a cursor from byte
// offset 0 up to the configured limit k (200 by default, per §4.1.1 of
// the paper) and tries the wire-format prober of every registered
// protocol at each offset, in demultiplexing-precedence order. The
// probers and their validation heuristics live in the protocol drivers
// under internal/proto; the engine itself knows no protocol — it
// iterates the registry, so adding a protocol never touches this
// package.
//
// The engine then classifies each datagram (§4.1.2):
//
//   - Standard: a validated message starts at offset 0;
//   - ProprietaryHeader: the first validated message starts later;
//   - FullyProprietary: no validated message anywhere in the payload.
package dpi

import (
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// Protocol identifies the protocol of an extracted message; it is the
// registry's identifier type.
type Protocol = proto.ID

// Protocol identifiers, re-exported from the registry for callers that
// reached them through this package.
const (
	ProtoUnknown     = proto.Unknown
	ProtoSTUN        = proto.STUN
	ProtoChannelData = proto.ChannelData
	ProtoRTP         = proto.RTP
	ProtoRTCP        = proto.RTCP
	ProtoQUIC        = proto.QUIC
	ProtoDTLS        = proto.DTLS
)

// Message is one validated protocol message extracted from a datagram.
type Message = proto.Message

// Class is the datagram classification of §4.1.2.
type Class uint8

// Datagram classes.
const (
	ClassFullyProprietary Class = iota
	ClassStandard
	ClassProprietaryHeader
)

func (c Class) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassProprietaryHeader:
		return "proprietary header"
	case ClassFullyProprietary:
		return "fully proprietary"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Result is the inspection outcome for one datagram.
type Result struct {
	Class    Class
	Messages []Message
	// ProprietaryHeader is the byte region before the first message
	// (nil for standard and fully proprietary datagrams).
	ProprietaryHeader []byte
}

// StreamContext carries per-stream state across datagrams of one
// transport stream, enabling the cross-message validation heuristics.
// A fresh context must be used per stream, and datagrams must be fed in
// capture order. The protocol-private state lives in the embedded
// registry StreamState's per-protocol slots; the engine adds only its
// own scan bookkeeping.
type StreamContext struct {
	// State is the protocol drivers' per-stream validation state.
	State proto.StreamState

	// Span, when non-nil, receives the stream's decision trace: one
	// probe event per Algorithm 1 step (match or one-byte shift) and
	// one extraction event per datagram. Nil (the default) keeps the
	// probe loop allocation-free — a single pointer test per datagram
	// plus one branch per step.
	Span *obs.Span

	// maxMsgOffset is the deepest offset a validated message has been
	// found at on this stream; msgCount counts validated messages.
	// Both feed the adaptive offset bound.
	maxMsgOffset int
	msgCount     int
	// shiftAttempts accumulates candidate-extraction attempts across
	// the stream's datagrams, for the offset-shift metric.
	// InspectStream drains it into the registry.
	shiftAttempts int
	// scratch receives matchAt's output, valid only until the next
	// matchAt call; a per-context field so the scan loop never zeroes
	// a fresh Message per candidate offset.
	scratch Message
	// msgArena is the epoch-scoped backing store for Result.Messages:
	// Inspect appends each datagram's messages here and hands out a
	// capacity-capped subslice, so the steady-state extraction path
	// allocates nothing. The arena rewinds when State.Epoch advances
	// (one bump per StreamInspector.Finalize) — by then the previous
	// chunk's Results have been consumed (DESIGN.md §14). If append
	// grows the arena mid-epoch, earlier subslices keep pointing into
	// the old backing array, which is never written again, so they
	// stay valid.
	msgArena []Message
	msgEpoch uint64
}

// NewStreamContext returns an empty per-stream context.
func NewStreamContext() *StreamContext {
	return &StreamContext{}
}

// Engine runs Algorithm 1.
type Engine struct {
	// MaxOffset is k, the deepest byte offset candidate extraction will
	// shift to. The paper found 200 sufficient (§4.1.1).
	MaxOffset int
	// Protocols restricts matching to the given set; empty means all
	// registered protocols.
	Protocols []Protocol
	// Adaptive enables the per-stream adaptive offset bound the paper
	// sketches as future work (§4.1.1): once a stream has shown where
	// its proprietary headers end, later datagrams are only scanned to
	// twice that depth (with a small floor), cutting the cost of
	// scanning fully proprietary datagrams such as Zoom's 1000-byte
	// fillers.
	Adaptive bool
	// Metrics, when non-nil, receives per-datagram instrumentation
	// from InspectStream: offset-shift attempts, classification
	// outcomes, extracted message counts, and extraction latency. Nil
	// disables collection at zero cost.
	Metrics *metrics.Registry
	// Registry selects the protocol set to probe with; nil means the
	// process-wide default registry.
	Registry *proto.Registry
}

// NewEngine returns an engine with the paper's default k=200 and all
// protocols enabled.
func NewEngine() *Engine {
	return &Engine{MaxOffset: 200}
}

func (e *Engine) registry() *proto.Registry {
	if e.Registry != nil {
		return e.Registry
	}
	return proto.Default()
}

func (e *Engine) enabled(p Protocol) bool {
	if len(e.Protocols) == 0 {
		return true
	}
	for _, q := range e.Protocols {
		if q == p {
			return true
		}
	}
	return false
}

// Inspect runs candidate extraction and validation over one datagram
// payload, updating ctx. ctx may be nil for stateless inspection.
func (e *Engine) Inspect(payload []byte, ctx *StreamContext) Result {
	if ctx == nil {
		ctx = NewStreamContext()
	}
	reg := e.registry()
	tracing := ctx.Span != nil
	if tracing {
		ctx.Span.BeginDatagram()
	}
	if ctx.msgEpoch != ctx.State.Epoch {
		ctx.msgEpoch = ctx.State.Epoch
		ctx.msgArena = ctx.msgArena[:0]
	}
	start := len(ctx.msgArena)
	limit := e.MaxOffset
	if limit <= 0 {
		limit = 200
	}
	// Adaptive bound: after enough messages, no deeper proprietary
	// header is expected than twice the deepest seen (floor 48 bytes).
	if e.Adaptive && ctx.msgCount >= 16 {
		if adaptive := maxInt(48, 2*ctx.maxMsgOffset+8); adaptive < limit {
			limit = adaptive
		}
	}
	i := 0
	for i < len(payload) {
		if i > limit && len(ctx.msgArena) == start {
			break
		}
		ctx.shiftAttempts++
		if !e.matchAt(reg, payload, i, &ctx.State, &ctx.scratch) {
			if tracing {
				ctx.Span.Probe(i, payload[i], "", obs.OutcomeShift)
			}
			i++
			continue
		}
		m := ctx.scratch
		if tracing {
			name := ""
			if meta, ok := reg.Meta(m.Protocol); ok {
				name = meta.Name
			}
			ctx.Span.Probe(i, payload[i], name, obs.OutcomeMatch)
		}
		// A driver's Accept hook post-processes the accepted message
		// against its full datagram (the RTP driver truncates at a
		// strong second candidate and records sequence state).
		if a := reg.Accepter(m.Protocol); a != nil {
			m = a.Accept(payload, m, &ctx.State)
		}
		ctx.msgArena = append(ctx.msgArena, m)
		ctx.msgCount++
		if m.Offset > ctx.maxMsgOffset {
			ctx.maxMsgOffset = m.Offset
		}
		i = m.Offset + m.Length
	}
	var res Result
	// Cap the subslice at its length so a later datagram's append can
	// never write into this Result's message run.
	msgs := ctx.msgArena[start:len(ctx.msgArena):len(ctx.msgArena)]
	if len(msgs) > 0 {
		res.Messages = msgs
	}
	switch {
	case len(msgs) == 0:
		res.Class = ClassFullyProprietary
	case msgs[0].Offset == 0:
		res.Class = ClassStandard
	default:
		res.Class = ClassProprietaryHeader
		res.ProprietaryHeader = payload[:msgs[0].Offset]
	}
	if tracing {
		ctx.Span.Extraction(res.Class.String(), len(msgs))
	}
	return res
}

// matchAt tries the enabled probers admitted by the first payload byte
// at payload[i:], in registry precedence order: protocols with stronger
// structural signatures win (STUN's magic cookie before ChannelData
// framing before the RTCP type range before QUIC and DTLS before the
// weak classic-STUN and RTP patterns). The registry's first-byte table
// (RFC 7983-style demultiplexing) skips probers whose wire format
// cannot start with that byte.
//
// The match is written through out rather than returned: matchAt runs
// once per candidate offset of every payload, and returning a Message
// by value made the scan loop zero and copy ~100 bytes per miss —
// the hot path's single largest cost before the out-parameter form.
func (e *Engine) matchAt(reg *proto.Registry, payload []byte, i int, st *proto.StreamState, out *Message) bool {
	c := proto.Candidate{Payload: payload, Offset: i}
	probers := reg.ProbersFor(payload[i])
	for k := range probers {
		p := &probers[k]
		if !e.enabled(p.ID) {
			continue
		}
		if m, ok := p.Validate(c, st); ok {
			m.Offset = i
			*out = m
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
