package stun

// This file is the registry of message types and attribute types that
// are "publicly defined" for the purposes of compliance checking. The
// paper (footnote 2) treats an implementation as compliant if it adheres
// to ANY officially published revision, so the registry is the union of
// RFC 3489, RFC 5389, RFC 8489 (STUN), RFC 5766, RFC 8656 (TURN),
// RFC 6062 (TURN-TCP), RFC 8445 (ICE), RFC 5780 (NAT behaviour
// discovery), and registered expansions in the IANA STUN registries.

// Spec identifies the document that defines a registry entry.
type Spec string

// Specification labels used in registry entries and compliance reasons.
const (
	SpecRFC3489 Spec = "RFC 3489"
	SpecRFC5389 Spec = "RFC 5389"
	SpecRFC8489 Spec = "RFC 8489"
	SpecRFC5766 Spec = "RFC 5766"
	SpecRFC8656 Spec = "RFC 8656"
	SpecRFC6062 Spec = "RFC 6062"
	SpecRFC8445 Spec = "RFC 8445"
	SpecRFC5780 Spec = "RFC 5780"
	SpecIANA    Spec = "IANA STUN registry"
)

// definedMethods maps each registered STUN/TURN method to its defining
// document.
var definedMethods = map[Method]Spec{
	MethodBinding:           SpecRFC5389,
	MethodSharedSecret:      SpecRFC3489,
	MethodAllocate:          SpecRFC5766,
	MethodRefresh:           SpecRFC5766,
	MethodSend:              SpecRFC5766,
	MethodData:              SpecRFC5766,
	MethodCreatePermission:  SpecRFC5766,
	MethodChannelBind:       SpecRFC5766,
	MethodConnect:           SpecRFC6062,
	MethodConnectionBind:    SpecRFC6062,
	MethodConnectionAttempt: SpecRFC6062,
	// GOOG-PING (method 0x080) is a registered expansion used by
	// libwebrtc deployments. Google Meet's observed 0x0200/0x0300
	// message types decode to method 0x080 with request/success classes
	// under the RFC 5389 bit packing; the paper's Table 4 classifies
	// them as defined, so we register the method here.
	MethodGoogPing: SpecIANA,
}

// DefinedMessageType reports whether t is a defined message type under
// any published revision, and which document defines its method.
//
// A type is defined when its method is registered; all four classes of a
// registered method are considered defined except indication-only
// methods used as requests (the per-class restrictions are enforced by
// the compliance layer, not the registry).
func DefinedMessageType(t MessageType) (Spec, bool) {
	spec, ok := definedMethods[t.Method()]
	return spec, ok
}

// messageTypeNames gives human-readable names for known full types.
var messageTypeNames = map[MessageType]string{
	TypeBindingRequest:         "Binding Request",
	TypeBindingIndication:      "Binding Indication",
	TypeBindingSuccess:         "Binding Success Response",
	TypeBindingError:           "Binding Error Response",
	TypeSharedSecretRequest:    "Shared Secret Request",
	TypeAllocateRequest:        "Allocate Request",
	TypeAllocateSuccess:        "Allocate Success Response",
	TypeAllocateError:          "Allocate Error Response",
	TypeRefreshRequest:         "Refresh Request",
	TypeRefreshSuccess:         "Refresh Success Response",
	TypeSendIndication:         "Send Indication",
	TypeDataIndication:         "Data Indication",
	TypeCreatePermissionReq:    "CreatePermission Request",
	TypeCreatePermissionOK:     "CreatePermission Success Response",
	TypeCreatePermissionErr:    "CreatePermission Error Response",
	TypeChannelBindRequest:     "ChannelBind Request",
	TypeChannelBindSuccess:     "ChannelBind Success Response",
	TypeConnectRequest:         "Connect Request",
	TypeConnectionAttemptIndic: "ConnectionAttempt Indication",
	MessageType(0x0200):        "GOOG-PING Request",
	MessageType(0x0300):        "GOOG-PING Success Response",
}

// attrSpec describes a defined attribute: its defining document and, if
// nonzero, its fixed value length in bytes (0 = variable).
type attrSpec struct {
	Spec     Spec
	Name     string
	FixedLen int
	// MaxLen bounds variable-length values when nonzero.
	MaxLen int
}

// definedAttrs is the union attribute registry.
var definedAttrs = map[AttrType]attrSpec{
	AttrMappedAddress:     {SpecRFC5389, "MAPPED-ADDRESS", 0, 20},
	AttrResponseAddress:   {SpecRFC3489, "RESPONSE-ADDRESS", 8, 0},
	AttrChangeRequest:     {SpecRFC5780, "CHANGE-REQUEST", 4, 0},
	AttrSourceAddress:     {SpecRFC3489, "SOURCE-ADDRESS", 8, 0},
	AttrChangedAddress:    {SpecRFC3489, "CHANGED-ADDRESS", 8, 0},
	AttrUsername:          {SpecRFC5389, "USERNAME", 0, 513},
	AttrPassword:          {SpecRFC3489, "PASSWORD", 0, 767},
	AttrMessageIntegrity:  {SpecRFC5389, "MESSAGE-INTEGRITY", 20, 0},
	AttrErrorCode:         {SpecRFC5389, "ERROR-CODE", 0, 763},
	AttrUnknownAttributes: {SpecRFC5389, "UNKNOWN-ATTRIBUTES", 0, 0},
	AttrReflectedFrom:     {SpecRFC3489, "REFLECTED-FROM", 8, 0},
	AttrChannelNumber:     {SpecRFC5766, "CHANNEL-NUMBER", 4, 0},
	AttrLifetime:          {SpecRFC5766, "LIFETIME", 4, 0},
	AttrXORPeerAddress:    {SpecRFC5766, "XOR-PEER-ADDRESS", 0, 20},
	AttrData:              {SpecRFC5766, "DATA", 0, 0},
	AttrRealm:             {SpecRFC5389, "REALM", 0, 763},
	AttrNonce:             {SpecRFC5389, "NONCE", 0, 763},
	AttrXORRelayedAddress: {SpecRFC5766, "XOR-RELAYED-ADDRESS", 0, 20},
	AttrRequestedFamily:   {SpecRFC8656, "REQUESTED-ADDRESS-FAMILY", 4, 0},
	AttrEvenPort:          {SpecRFC5766, "EVEN-PORT", 1, 0},
	AttrRequestedTranspt:  {SpecRFC5766, "REQUESTED-TRANSPORT", 4, 0},
	AttrDontFragment:      {SpecRFC5766, "DONT-FRAGMENT", 0, 0},
	AttrXORMappedAddress:  {SpecRFC5389, "XOR-MAPPED-ADDRESS", 0, 20},
	AttrReservationToken:  {SpecRFC5766, "RESERVATION-TOKEN", 8, 0},
	AttrPriority:          {SpecRFC8445, "PRIORITY", 4, 0},
	AttrUseCandidate:      {SpecRFC8445, "USE-CANDIDATE", 0, 0},
	AttrPadding:           {SpecRFC5780, "PADDING", 0, 0},
	AttrResponsePort:      {SpecRFC5780, "RESPONSE-PORT", 4, 0},
	AttrSoftware:          {SpecRFC5389, "SOFTWARE", 0, 763},
	AttrAlternateServer:   {SpecRFC5389, "ALTERNATE-SERVER", 0, 20},
	AttrFingerprint:       {SpecRFC5389, "FINGERPRINT", 4, 0},
	AttrICEControlled:     {SpecRFC8445, "ICE-CONTROLLED", 8, 0},
	AttrICEControlling:    {SpecRFC8445, "ICE-CONTROLLING", 8, 0},
	AttrResponseOrigin:    {SpecRFC5780, "RESPONSE-ORIGIN", 0, 20},
	AttrOtherAddress:      {SpecRFC5780, "OTHER-ADDRESS", 0, 20},
	AttrGoogNetworkInfo:   {SpecIANA, "GOOG-NETWORK-INFO", 4, 0},
}

// attrTypeNames is derived for String().
var attrTypeNames = func() map[AttrType]string {
	m := make(map[AttrType]string, len(definedAttrs))
	for t, s := range definedAttrs {
		m[t] = s.Name
	}
	return m
}()

// DefinedAttr reports whether a is a registered attribute type and, if
// so, its defining document.
func DefinedAttr(a AttrType) (Spec, bool) {
	s, ok := definedAttrs[a]
	return s.Spec, ok
}

// AttrLenValid reports whether length n is structurally valid for a
// defined attribute type. It returns true for unknown types (there is
// no rule to violate; criterion 3 already rejects them).
func AttrLenValid(a AttrType, n int) bool {
	s, ok := definedAttrs[a]
	if !ok {
		return true
	}
	if s.FixedLen > 0 {
		return n == s.FixedLen
	}
	if s.MaxLen > 0 {
		return n <= s.MaxLen
	}
	return true
}

// ComprehensionRequired reports whether an attribute type is in the
// comprehension-required range (0x0000-0x7FFF).
func ComprehensionRequired(a AttrType) bool { return a < 0x8000 }

// addressBearing lists attribute types whose value carries an address
// family byte that must be FamilyIPv4 or FamilyIPv6.
var addressBearing = map[AttrType]bool{
	AttrMappedAddress:     true,
	AttrResponseAddress:   true,
	AttrSourceAddress:     true,
	AttrChangedAddress:    true,
	AttrReflectedFrom:     true,
	AttrXORPeerAddress:    true,
	AttrXORRelayedAddress: true,
	AttrXORMappedAddress:  true,
	AttrAlternateServer:   true,
	AttrResponseOrigin:    true,
	AttrOtherAddress:      true,
}

// AddressBearing reports whether attribute values of type a carry an
// address family field.
func AddressBearing(a AttrType) bool { return addressBearing[a] }

// allowedDataIndicationAttrs is the exact attribute set RFC 8656 §11.6
// permits in a Data indication. The compliance layer flags anything
// else (the FaceTime CHANNEL-NUMBER case).
var allowedDataIndicationAttrs = map[AttrType]bool{
	AttrXORPeerAddress: true,
	AttrData:           true,
	// ICMP attribute from RFC 8656 is permitted in Data indications.
	AttrType(0x8004): true,
}

// AllowedInDataIndication reports whether attribute a may appear in a
// TURN Data indication.
func AllowedInDataIndication(a AttrType) bool { return allowedDataIndicationAttrs[a] }

// requestOnlyAttrs lists attributes that must not appear in success
// responses (RFC 8445 §7.1: PRIORITY/USE-CANDIDATE are request
// attributes; ICE-CONTROLLING/CONTROLLED likewise).
var requestOnlyAttrs = map[AttrType]bool{
	AttrPriority:         true,
	AttrUseCandidate:     true,
	AttrICEControlled:    true,
	AttrICEControlling:   true,
	AttrRequestedTranspt: true,
}

// RequestOnly reports whether attribute a is restricted to request-class
// messages.
func RequestOnly(a AttrType) bool { return requestOnlyAttrs[a] }
