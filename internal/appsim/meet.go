package appsim

import (
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

// Google Meet wire behaviour (paper §5.2.1, §5.2.3):
//
//   - the fullest standard STUN/TURN usage of any studied app: ICE
//     connectivity checks, GOOG-PING (0x0200/0x0300), and the complete
//     TURN lifecycle, all compliant — 15 of 16 observed types;
//   - the one exception is 0x0003: mid-call Allocate requests repeat in
//     a periodic ping-pong as connectivity checks, which the paper's
//     criterion 5 flags (Allocate is for session setup);
//   - in relay mode, video rides in ChannelData frames on the bound
//     channel (driving the large 19.8% STUN/TURN message share);
//   - RTCP is SRTCP-protected; in relay mode under Wi-Fi most messages
//     carry only the 4-byte E-flag+index without the 10-byte
//     authentication tag RFC 3711 requires — the paper's headline
//     RTCP violation (all 7 observed types non-compliant);
//   - RTP itself is fully compliant across 11 payload types;
//   - on cellular, relay for the first 30 seconds then P2P.
var meetRTPPayloads = []uint8{100, 103, 104, 109, 111, 114, 35, 36, 63, 96, 97}

var meetRTCPTypes = []rtcp.PacketType{
	rtcp.TypeSenderReport, rtcp.TypeReceiverReport, rtcp.TypeSDES,
	rtcp.TypeApp, rtcp.TypeRTPFB, rtcp.TypePSFB, rtcp.TypeXR,
}

func generateMeet(e *env) {
	cfg := e.cfg
	caller := netip.AddrPortFrom(e.callerLocal, 50040)
	callee := netip.AddrPortFrom(e.calleeAddr, 50042)
	server := netip.AddrPortFrom(e.serverAddr, 3478)
	stunSrv := netip.AddrPortFrom(e.stunAddr, 19302)
	end := cfg.Start.Add(cfg.Duration)

	var relayUntil time.Time
	switch e.mode {
	case ModeRelay:
		relayUntil = end
	case ModeRelayThenP2P:
		relayUntil = cfg.Start.Add(switchPoint(cfg))
	default:
		relayUntil = cfg.Start
	}

	// --- Candidate gathering: compliant server binding. ---
	at := cfg.Start.Add(30 * time.Millisecond)
	req := ice.ServerBindingRequest(e.rng)
	e.push(at, caller, stunSrv, req.Raw)
	mapped := netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 40040)
	e.push(at.Add(20*time.Millisecond), stunSrv, caller, ice.ServerBindingResponse(req, mapped).Raw)

	// --- ICE connectivity checks with short-term credentials. ---
	local := &ice.Agent{Ufrag: "meetL", Password: "meetlocalpassword012345", Controlling: true, TieBreaker: e.rng.Uint64()}
	remote := &ice.Agent{Ufrag: "meetR", Password: "meetremotepassword01234"}
	at = at.Add(60 * time.Millisecond)
	for i := 0; i < 3; i++ {
		creq := local.BindingRequest(e.rng, remote, 0x6e7f1eff, i == 2)
		e.push(at, caller, callee, creq.Raw)
		e.push(at.Add(12*time.Millisecond), callee, caller, remote.BindingResponse(creq, mapped).Raw)
		at = at.Add(40 * time.Millisecond)
	}

	// --- TURN allocation lifecycle (compliant). ---
	creds := ice.TURNCredentials{Username: "meet", Realm: "google.com", Nonce: "meetnonce", Password: "pw"}
	relayed := e.relay.Allocate(mapped)
	seq := ice.TURNAllocation(e.rng, creds, relayed, mapped, callee, 0x4000)
	for _, ex := range seq {
		src, dst := caller, server
		if !ex.FromClient {
			src, dst = server, caller
		}
		e.push(at, src, dst, ex.Msg.Encode())
		at = at.Add(18 * time.Millisecond)
	}
	// Early media through Send/Data indications before the channel
	// binding takes effect.
	si := ice.SendIndication(e.rng, callee, e.rng.Bytes(60))
	e.push(at, caller, server, si.Encode())
	di := ice.DataIndication(e.rng, callee, e.rng.Bytes(60), nil)
	e.push(at.Add(10*time.Millisecond), server, caller, di.Encode())
	// A Refresh pair mid-call.
	for _, ex := range ice.RefreshExchange(e.rng, creds) {
		src, dst := caller, server
		if !ex.FromClient {
			src, dst = server, caller
		}
		e.push(cfg.Start.Add(cfg.Duration/2), src, dst, ex.Msg.Encode())
	}

	// --- Periodic ICE consent-freshness checks (compliant binding
	// request/response pairs, libwebrtc-style). ---
	checks := int(cfg.Duration / (500 * time.Millisecond))
	if checks < 4 {
		checks = 4
	}
	for i := 0; i < checks; i++ {
		ts := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(checks+1))
		creq := local.BindingRequest(e.rng, remote, 0x6e7f1eff, false)
		e.push(ts, caller, callee, creq.Raw)
		e.push(ts.Add(8*time.Millisecond), callee, caller, remote.BindingResponse(creq, mapped).Raw)
	}

	// --- GOOG-PING keepalives (0x0200/0x0300). ---
	pings := int(cfg.Duration / (2 * time.Second))
	if pings < 2 {
		pings = 2
	}
	for i := 0; i < pings; i++ {
		ts := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(pings+1))
		id := e.rng.TxID()
		e.push(ts, caller, callee, ice.GoogPing(e.rng, false, id).Raw)
		e.push(ts.Add(10*time.Millisecond), callee, caller, ice.GoogPing(e.rng, true, id).Raw)
	}

	// --- Mid-call Allocate ping-pong (the 0x0003 violation). ---
	pp := int(cfg.Duration / (2 * time.Second))
	if pp < 6 {
		pp = 6
	}
	for i := 0; i < pp; i++ {
		ts := cfg.Start.Add(time.Duration(i+1) * cfg.Duration / time.Duration(pp+1))
		areq := &stun.Message{Type: stun.TypeAllocateRequest, TransactionID: e.rng.TxID()}
		areq.Add(stun.AttrRequestedTranspt, stun.EncodeRequestedTransport(17))
		areq.Add(stun.AttrUsername, []byte(creds.Username))
		areq.Add(stun.AttrRealm, []byte(creds.Realm))
		areq.Add(stun.AttrNonce, []byte(creds.Nonce))
		e.push(ts, caller, server, areq.Encode())
		aok := &stun.Message{Type: stun.TypeAllocateSuccess, TransactionID: areq.TransactionID}
		aok.Add(stun.AttrXORRelayedAddress, stun.EncodeXORAddress(relayed, areq.TransactionID))
		aok.Add(stun.AttrLifetime, []byte{0, 0, 2, 0x58})
		e.push(ts.Add(15*time.Millisecond), server, caller, aok.Encode())
	}

	// --- Media. ---
	srtpCtx, err := srtp.NewContext(e.rng.Bytes(srtp.MasterKeyLen), e.rng.Bytes(srtp.MasterSaltLen))
	if err != nil {
		panic("appsim: meet srtp: " + err.Error())
	}
	streams := []struct {
		ms    *mediaStream
		out   bool
		video bool
	}{
		{newMediaStream(e.rng, e.rng.Uint32(), 111, 960), true, false},
		{newMediaStream(e.rng, e.rng.Uint32(), 96, 3000), true, true},
		{newMediaStream(e.rng, e.rng.Uint32(), 111, 960), false, false},
		{newMediaStream(e.rng, e.rng.Uint32(), 96, 3000), false, true},
	}
	rate := cfg.rate()
	interval := time.Second / time.Duration(rate)
	tick := 0
	ptIdx := 0
	rtcpIdx := 0
	var srtcpIndex uint32 = 1
	for ts := cfg.Start.Add(500 * time.Millisecond); ts.Before(end); ts = ts.Add(interval) {
		relayNow := ts.Before(relayUntil)
		for i := range streams {
			st := &streams[i]
			tick++
			peer := callee
			if relayNow {
				peer = server
			}
			src, dst := caller, peer
			if !st.out {
				src, dst = peer, caller
			}

			// RTCP (SRTCP-protected), ≈7.8% share.
			if tick%11 == 0 {
				plain := meetRTCP(e, &rtcpIdx, st.ms, ts, tick)
				omitTag := relayNow && cfg.Network == WiFiRelay
				prot, perr := srtpCtx.ProtectRTCP(plain, srtcpIndex, omitTag)
				if perr != nil {
					panic("appsim: meet srtcp: " + perr.Error())
				}
				srtcpIndex++
				e.push(ts.Add(e.jitter(3)), src, dst, prot)
				continue
			}

			st.ms.pt = meetRTPPayloads[ptIdx%len(meetRTPPayloads)]
			ptIdx++
			size := 95
			if st.video {
				size = e.mediaSize(ts, true, 600+e.rng.IntN(400))
			}
			pkt := st.ms.next(size, nil, false).Encode()
			// Relay mode: media rides in ChannelData on the bound
			// channel — this is what drives Meet's outsized STUN/TURN
			// message share in Table 2 and, by volume, makes STUN/TURN
			// the most compliant protocol after QUIC.
			if relayNow {
				cd := &stun.ChannelData{ChannelNumber: 0x4000, Data: pkt}
				pkt = cd.Encode()
			}
			e.push(e.mediaAt(ts, st.video, 3), src, dst, pkt)

			// Fully proprietary ≈1.3%.
			if tick%77 == 0 {
				e.push(ts.Add(e.jitter(4)), src, dst, append([]byte{0x21, 0x07}, e.rng.Bytes(24)...))
			}
		}
	}
}

// meetRTCP builds the plaintext compound for one SRTCP message, cycling
// the seven observed packet types.
func meetRTCP(e *env, idx *int, ms *mediaStream, at time.Time, tick int) []byte {
	t := meetRTCPTypes[*idx%len(meetRTCPTypes)]
	*idx++
	switch t {
	case rtcp.TypeSenderReport:
		return rtcp.EncodeSR(&rtcp.SenderReport{
			SSRC: ms.ssrc,
			Info: rtcp.SenderInfo{NTPTimestamp: ntpTime(at), RTPTimestamp: ms.ts, PacketCount: uint32(tick), OctetCount: uint32(tick) * 500},
		})
	case rtcp.TypeReceiverReport:
		return rtcp.EncodeRR(&rtcp.ReceiverReport{SSRC: ms.ssrc, Reports: []rtcp.ReportBlock{{SSRC: ms.ssrc + 2, Jitter: 11}}})
	case rtcp.TypeSDES:
		return rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: ms.ssrc, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "meet@goog"}}}}})
	case rtcp.TypeApp:
		return rtcp.EncodeApp(&rtcp.App{Subtype: 1, SSRC: ms.ssrc, Name: [4]byte{'g', 'o', 'o', 'g'}, Data: e.rng.Bytes(8)})
	case rtcp.TypeRTPFB:
		return rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: rtcp.FBTWCC, SenderSSRC: ms.ssrc, MediaSSRC: ms.ssrc + 2, FCI: twccFCI(e, ms)})
	case rtcp.TypePSFB:
		return rtcp.EncodeFeedback(rtcp.TypePSFB, &rtcp.Feedback{FMT: rtcp.FBPLI, SenderSSRC: ms.ssrc, MediaSSRC: ms.ssrc + 2})
	default: // XR
		return rtcp.EncodeXR(&rtcp.XR{SSRC: ms.ssrc, Blocks: []rtcp.XRBlock{{BlockType: 4, Contents: e.rng.Bytes(8)}}})
	}
}
