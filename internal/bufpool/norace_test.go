//go:build !race

package bufpool

const raceEnabled = false
