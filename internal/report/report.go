// Package report aggregates per-message compliance verdicts into the
// paper's two metrics and renders every table and figure of the
// evaluation section as text.
//
// The volume-based metric (§5.1.1) is the fraction of compliant
// messages over all extracted messages. The message-type-based metric
// (§5.1.2) treats each distinct message type as the unit and marks it
// compliant only if every observed instance conforms. Fully proprietary
// datagrams count as message units for the distribution tables (Table
// 2, Figure 3) but are excluded from the compliance ratios, as the
// paper does — they are not protocol messages.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// TypeStat tracks one message type under the type-based metric.
type TypeStat struct {
	Total        int
	NonCompliant int
	// Reasons tallies distinct violation reasons.
	Reasons map[string]int
}

// Compliant reports whether the type passes the message-type metric.
func (t *TypeStat) Compliant() bool { return t.NonCompliant == 0 }

// ProtoStat tracks one protocol family under the volume metric.
type ProtoStat struct {
	Messages  int
	Compliant int
	Bytes     int
}

// AppStats aggregates everything measured for one application.
type AppStats struct {
	App string
	// ByProtocol holds volume-metric counters per protocol family.
	ByProtocol map[dpi.Protocol]*ProtoStat
	// Types holds type-metric counters keyed by protocol family + label.
	Types map[compliance.TypeKey]*TypeStat
	// Datagrams counts DPI classifications.
	Datagrams map[dpi.Class]int
	// Violations tallies criterion → count.
	Violations map[compliance.Criterion]int
}

// NewAppStats returns empty statistics for an app.
func NewAppStats(app string) *AppStats {
	return &AppStats{
		App:        app,
		ByProtocol: make(map[dpi.Protocol]*ProtoStat),
		Types:      make(map[compliance.TypeKey]*TypeStat),
		Datagrams:  make(map[dpi.Class]int),
		Violations: make(map[compliance.Criterion]int),
	}
}

// AddChecked folds one compliance verdict into the statistics.
func (a *AppStats) AddChecked(c compliance.Checked) {
	fam := c.Protocol.Family()
	ps := a.ByProtocol[fam]
	if ps == nil {
		ps = &ProtoStat{}
		a.ByProtocol[fam] = ps
	}
	ps.Messages++
	ps.Bytes += c.Bytes
	if c.Verdict.Compliant {
		ps.Compliant++
	} else {
		a.Violations[c.Verdict.Failed]++
	}
	ts := a.Types[c.Type]
	if ts == nil {
		ts = &TypeStat{Reasons: make(map[string]int)}
		a.Types[c.Type] = ts
	}
	ts.Total++
	if !c.Verdict.Compliant {
		ts.NonCompliant++
		ts.Reasons[c.Verdict.Reason]++
	}
}

// AddDatagram records a DPI classification.
func (a *AppStats) AddDatagram(class dpi.Class) { a.Datagrams[class]++ }

// MessageUnits counts message units for distribution tables: extracted
// messages plus fully proprietary datagrams.
func (a *AppStats) MessageUnits() int {
	n := a.Datagrams[dpi.ClassFullyProprietary]
	for _, ps := range a.ByProtocol {
		n += ps.Messages
	}
	return n
}

// VolumeCompliance returns the volume-based compliance ratio over
// extracted messages (fully proprietary datagrams excluded), and false
// when no messages were extracted.
func (a *AppStats) VolumeCompliance() (float64, bool) {
	var total, compliant int
	for _, ps := range a.ByProtocol {
		total += ps.Messages
		compliant += ps.Compliant
	}
	if total == 0 {
		return 0, false
	}
	return float64(compliant) / float64(total), true
}

// TypeCompliance returns compliant and total type counts for a protocol
// family (dpi.ProtoUnknown aggregates all families).
func (a *AppStats) TypeCompliance(fam dpi.Protocol) (compliant, total int) {
	for key, ts := range a.Types {
		if fam != dpi.ProtoUnknown && key.Protocol != fam {
			continue
		}
		total++
		if ts.Compliant() {
			compliant++
		}
	}
	return compliant, total
}

// TypesOf lists the observed type labels for a family, split by
// compliance, each sorted.
func (a *AppStats) TypesOf(fam dpi.Protocol) (compliant, nonCompliant []string) {
	for key, ts := range a.Types {
		if key.Protocol != fam {
			continue
		}
		if ts.Compliant() {
			compliant = append(compliant, key.Label)
		} else {
			nonCompliant = append(nonCompliant, key.Label)
		}
	}
	sort.Strings(compliant)
	sort.Strings(nonCompliant)
	return compliant, nonCompliant
}

// Aggregate holds statistics for every application plus the
// protocol-centric rollup. Its renderers derive the protocol columns
// from the registry it was built with, so a newly registered protocol
// appears in every table without renderer edits.
type Aggregate struct {
	order []string
	apps  map[string]*AppStats
	reg   *proto.Registry
}

// NewAggregate returns an empty aggregate rendering against the default
// protocol registry.
func NewAggregate() *Aggregate { return NewAggregateWith(nil) }

// NewAggregateWith returns an empty aggregate rendering against the
// given registry (nil selects the default registry).
func NewAggregateWith(reg *proto.Registry) *Aggregate {
	return &Aggregate{apps: make(map[string]*AppStats), reg: reg}
}

func (g *Aggregate) registry() *proto.Registry {
	if g.reg != nil {
		return g.reg
	}
	return proto.Default()
}

// FamilyName returns the display name for a protocol-family column.
// Families observed in the data but not registered render a stable
// placeholder instead of dropping the data silently.
func (g *Aggregate) FamilyName(fam dpi.Protocol) string {
	if m, ok := g.registry().Meta(fam); ok {
		return m.Name
	}
	return fmt.Sprintf("protocol %d", fam)
}

// Families lists every candidate protocol-family column: the registered
// families in report order, followed by any family observed in app data
// without a registration, sorted by ID for stability.
func (g *Aggregate) Families() []dpi.Protocol {
	fams := g.registry().Families()
	seen := make(map[dpi.Protocol]bool, len(fams))
	for _, f := range fams {
		seen[f] = true
	}
	var extra []dpi.Protocol
	for _, app := range g.Apps() {
		for fam := range app.ByProtocol {
			if !seen[fam] {
				seen[fam] = true
				extra = append(extra, fam)
			}
		}
		for key := range app.Types {
			if !seen[key.Protocol] {
				seen[key.Protocol] = true
				extra = append(extra, key.Protocol)
			}
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(fams, extra...)
}

// ActiveFamilies lists the families with any observed data — the
// columns the tables render. A registered protocol that never appears
// in a capture set (DTLS in a capture matrix without DTLS traffic) is
// omitted rather than rendered as an all-N/A column.
func (g *Aggregate) ActiveFamilies() []dpi.Protocol {
	var out []dpi.Protocol
	for _, fam := range g.Families() {
		active := false
		for _, app := range g.Apps() {
			if ps := app.ByProtocol[fam]; ps != nil && ps.Messages > 0 {
				active = true
				break
			}
			if _, tot := app.TypeCompliance(fam); tot > 0 {
				active = true
				break
			}
		}
		if active {
			out = append(out, fam)
		}
	}
	return out
}

// App returns (creating if needed) the statistics for an app.
func (g *Aggregate) App(app string) *AppStats {
	s, ok := g.apps[app]
	if !ok {
		s = NewAppStats(app)
		g.apps[app] = s
		g.order = append(g.order, app)
	}
	return s
}

// Apps lists the apps in first-seen order.
func (g *Aggregate) Apps() []*AppStats {
	out := make([]*AppStats, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.apps[name])
	}
	return out
}

// ProtocolRollup merges every app's counters for one protocol family,
// used by the protocol-centric halves of Figures 4 and 5 and the bottom
// row of Table 3. Message types used by multiple applications count
// once per application, as the paper specifies.
func (g *Aggregate) ProtocolRollup(fam dpi.Protocol) (vol ProtoStat, typesCompliant, typesTotal int) {
	for _, app := range g.Apps() {
		if ps := app.ByProtocol[fam]; ps != nil {
			vol.Messages += ps.Messages
			vol.Compliant += ps.Compliant
			vol.Bytes += ps.Bytes
		}
		c, t := app.TypeCompliance(fam)
		typesCompliant += c
		typesTotal += t
	}
	return vol, typesCompliant, typesTotal
}

// table is a minimal text-table builder with right-padded columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func pct(num, den int) string {
	if den == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func ratio(c, t int) string {
	if t == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%d/%d", c, t)
}
