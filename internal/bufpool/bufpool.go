// Package bufpool is the pipeline's packet-buffer arena: a sync.Pool
// of fixed-size chunks plus per-stream Arenas that pack payload copies
// into those chunks, so the steady-state datagram path performs zero
// heap allocations per packet.
//
// Ownership model (DESIGN.md §14): an Arena owns every byte slice it
// returns from Append. The slices stay valid until the owner calls
// Release, which hands the backing chunks back to the shared Pool for
// reuse by any stream. Nothing downstream of the release point may
// retain an appended slice — in test builds, EnablePoison overwrites
// released chunks with a poison byte so a retained reference is
// detected as corrupted data rather than silent reuse.
//
// The Pool is safe for concurrent use (Release may run on worker
// goroutines while Feed appends on another stream's arena); a single
// Arena is single-owner, matching the analyzer's per-stream
// single-writer discipline.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// ChunkSize is the byte capacity of one pooled chunk. It comfortably
// holds a burst of full-size UDP payloads; payloads larger than this
// get a dedicated, exactly-sized chunk that is not pooled on release.
const ChunkSize = 64 * 1024

// PoisonByte fills released chunks when poisoning is enabled.
const PoisonByte = 0xDB

// poison is process-wide because chunks migrate between streams
// through the shared pool; tests flip it before exercising release
// paths. Atomic so the race hammer can run under -race.
var poison atomic.Bool

// EnablePoison makes every Release overwrite the released chunks with
// PoisonByte before pooling them, so a buffer referenced after release
// reads as corrupt. Intended for tests; returns the previous setting.
func EnablePoison(on bool) bool { return poison.Swap(on) }

// chunk is one pooled backing buffer. Chunks link into a list per
// arena so acquiring or releasing them never allocates.
type chunk struct {
	buf  []byte
	used int
	next *chunk
}

// Stats is a point-in-time copy of a pool's counters.
type Stats struct {
	// Gets counts chunk acquisitions; Misses counts the subset that
	// allocated a fresh chunk because the pool was empty.
	Gets, Misses uint64
	// Puts counts chunks returned for reuse.
	Puts uint64
	// Oversize counts payloads larger than ChunkSize, served by
	// dedicated chunks that are dropped (not pooled) on release.
	Oversize uint64
}

// Pool is a concurrency-safe source of fixed-size chunks. The zero
// value is not usable; construct with New. A nil *Pool disables
// pooling wherever one is optional.
type Pool struct {
	p        sync.Pool
	gets     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	oversize atomic.Uint64
}

// New returns an empty pool.
func New() *Pool {
	p := &Pool{}
	p.p.New = func() any {
		p.misses.Add(1)
		return &chunk{buf: make([]byte, 0, ChunkSize)}
	}
	return p
}

var global = New()

// Global returns the process-wide shared pool, the default arena
// backing for callers that do not manage their own.
func Global() *Pool { return global }

// Stats returns the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:     p.gets.Load(),
		Misses:   p.misses.Load(),
		Puts:     p.puts.Load(),
		Oversize: p.oversize.Load(),
	}
}

func (p *Pool) get() *chunk {
	p.gets.Add(1)
	c := p.p.Get().(*chunk)
	c.used = 0
	c.next = nil
	return c
}

func (p *Pool) put(c *chunk) {
	if cap(c.buf) != ChunkSize {
		// Dedicated oversize chunk: let the GC take it rather than
		// pinning an unusual size in the pool.
		return
	}
	if poison.Load() {
		b := c.buf[:c.used]
		for i := range b {
			b[i] = PoisonByte
		}
	}
	c.used = 0
	c.next = nil
	p.puts.Add(1)
	p.p.Put(c)
}

// Arena packs byte-slice copies into pooled chunks. The zero value is
// not usable; construct with NewArena. An Arena is single-owner: only
// one goroutine may Append, and Release must not race with Append.
type Arena struct {
	pool *Pool
	// head..tail is the chain of chunks owned by this arena; tail is
	// the one Append currently packs into.
	head, tail *chunk
}

// NewArena returns an empty arena drawing from the pool.
func (p *Pool) NewArena() *Arena { return &Arena{pool: p} }

// Append copies b into the arena and returns the arena-owned copy,
// valid until Release. A zero-length b returns a non-nil empty slice
// (matching the batch decoder's payload convention). Append never
// allocates once the pool is warm, except for payloads larger than
// ChunkSize, which get a dedicated chunk.
func (a *Arena) Append(b []byte) []byte {
	n := len(b)
	if n > ChunkSize {
		a.pool.oversize.Add(1)
		c := &chunk{buf: make([]byte, 0, n), used: n}
		c.buf = c.buf[:n]
		copy(c.buf, b)
		a.link(c)
		return c.buf
	}
	c := a.tail
	if c == nil || cap(c.buf)-c.used < n {
		c = a.pool.get()
		a.link(c)
	}
	dst := c.buf[c.used : c.used+n : c.used+n]
	copy(dst, b)
	c.used += n
	return dst
}

// link appends c to the arena's chunk chain and makes it current.
func (a *Arena) link(c *chunk) {
	if a.tail == nil {
		a.head = c
	} else {
		a.tail.next = c
	}
	a.tail = c
}

// Release returns every chunk to the pool. All slices previously
// returned by Append become invalid. The arena remains usable: the
// next Append starts a fresh chain.
func (a *Arena) Release() {
	for c := a.head; c != nil; {
		next := c.next
		a.pool.put(c)
		c = next
	}
	a.head, a.tail = nil, nil
}

// Bytes reports how many payload bytes the arena currently holds.
func (a *Arena) Bytes() int {
	n := 0
	for c := a.head; c != nil; c = c.next {
		n += c.used
	}
	return n
}
