package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// Finding is one behavioural observation beyond per-message compliance
// — the §5.3 class of results (filler messages, proprietary keepalives,
// direction flags, SSRC reuse).
type Finding struct {
	App string
	// Kind is a stable identifier for the finding class.
	Kind string
	// Detail is the human-readable description with measured numbers.
	Detail string
	// Count is how many packets/instances supported the finding.
	Count int
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s (%d instances)", f.App, f.Kind, f.Detail, f.Count)
}

// Finding kinds.
const (
	FindingFiller          = "filler-messages"
	FindingKeepalive       = "proprietary-keepalive"
	FindingDoubleRTP       = "multiple-rtp-per-datagram"
	FindingZeroSSRC        = "zero-sender-ssrc"
	FindingDirectionByte   = "direction-correlated-trailer"
	FindingHeaderDirection = "direction-correlated-header"
	FindingSSRCReuse       = "ssrc-reuse-across-calls"
	Finding6000Header      = "length-bearing-0x6000-header"
)

// findingsContext accumulates evidence across the streams of one
// capture.
type findingsContext struct {
	filler      int
	keepalive   int
	doubleRTP   int
	rtpDgrams   int
	zeroSSRC    int
	fbTotal     int
	hdr6000     int
	hdr6000OK   int
	trailerDirs map[flow.Direction]map[byte]int
	headerDirs  map[flow.Direction]map[byte]int
	// reg resolves per-message findings evidence through the protocol
	// drivers' Observer hooks; nil selects the default registry.
	reg *proto.Registry
}

func (f *findingsContext) registry() *proto.Registry {
	if f.reg != nil {
		return f.reg
	}
	return proto.Default()
}

// scanStream inspects one RTC stream's packets and DPI results. pkts
// and results are index-aligned; chunked callers (the streaming
// analyzer's eviction path) pass each chunk's records — the evidence is
// commutative, so chunking does not change the accumulated totals.
func (f *findingsContext) scanStream(pkts []flow.Packet, results []dpi.Result) {
	if f.trailerDirs == nil {
		f.trailerDirs = map[flow.Direction]map[byte]int{}
		f.headerDirs = map[flow.Direction]map[byte]int{}
	}
	reg := f.registry()
	var obs proto.Observation
	for i, r := range results {
		pkt := pkts[i]
		payload := pkt.Payload

		switch r.Class {
		case dpi.ClassFullyProprietary:
			// Zoom filler: large datagrams of one repeated byte.
			if len(payload) >= 800 && uniformBytes(payload) {
				f.filler++
			}
			// FaceTime keepalive: fixed 36-byte 0xDEADBEEFCAFE frames.
			if len(payload) == 36 && bytes.HasPrefix(payload, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE}) {
				f.keepalive++
			}
		case dpi.ClassProprietaryHeader:
			hdr := r.ProprietaryHeader
			// FaceTime 0x6000 header: 2-byte magic then a length field
			// covering the rest of the datagram.
			if len(hdr) >= 4 && hdr[0] == 0x60 && hdr[1] == 0x00 {
				f.hdr6000++
				declared := int(binary.BigEndian.Uint16(hdr[2:4]))
				if declared == len(payload)-4 {
					f.hdr6000OK++
				}
			}
			// Direction-correlated first header byte (Zoom's 0x00/0x04).
			if len(hdr) > 0 {
				m := f.headerDirs[pkt.Dir]
				if m == nil {
					m = map[byte]int{}
					f.headerDirs[pkt.Dir] = m
				}
				m[hdr[0]]++
			}
		}

		rtpCount := 0
		for _, msg := range r.Messages {
			reg.Observe(msg, &obs)
			if obs.MediaMessage {
				rtpCount++
			}
			// Direction-correlated trailer byte (Discord).
			if obs.HasTrailerByte {
				m := f.trailerDirs[pkt.Dir]
				if m == nil {
					m = map[byte]int{}
					f.trailerDirs[pkt.Dir] = m
				}
				m[obs.TrailerByte]++
			}
			f.fbTotal += obs.FeedbackMessages
			f.zeroSSRC += obs.ZeroSSRCFeedback
		}
		if rtpCount > 0 {
			f.rtpDgrams++
			if rtpCount > 1 {
				f.doubleRTP++
			}
		}
	}
}

// merge folds another context's evidence into f. All evidence is
// commutative (counters and per-direction byte histograms), so the
// merged findings are independent of the order streams were scanned or
// merged in — the property the parallel pipeline relies on.
func (f *findingsContext) merge(o *findingsContext) {
	f.filler += o.filler
	f.keepalive += o.keepalive
	f.doubleRTP += o.doubleRTP
	f.rtpDgrams += o.rtpDgrams
	f.zeroSSRC += o.zeroSSRC
	f.fbTotal += o.fbTotal
	f.hdr6000 += o.hdr6000
	f.hdr6000OK += o.hdr6000OK
	mergeDirs := func(dst *map[flow.Direction]map[byte]int, src map[flow.Direction]map[byte]int) {
		if len(src) == 0 {
			return
		}
		if *dst == nil {
			*dst = map[flow.Direction]map[byte]int{}
		}
		for dir, m := range src {
			d := (*dst)[dir]
			if d == nil {
				d = map[byte]int{}
				(*dst)[dir] = d
			}
			for v, n := range m {
				d[v] += n
			}
		}
	}
	mergeDirs(&f.trailerDirs, o.trailerDirs)
	mergeDirs(&f.headerDirs, o.headerDirs)
}

func uniformBytes(b []byte) bool {
	for _, x := range b[1:] {
		if x != b[0] {
			return false
		}
	}
	return true
}

// findings renders the accumulated evidence.
func (f *findingsContext) findings() []Finding {
	var out []Finding
	if f.filler > 0 {
		out = append(out, Finding{
			Kind:   FindingFiller,
			Detail: fmt.Sprintf("fully proprietary filler datagrams of one repeated byte (likely bandwidth probing); %d observed", f.filler),
			Count:  f.filler,
		})
	}
	if f.keepalive > 0 {
		out = append(out, Finding{
			Kind:   FindingKeepalive,
			Detail: fmt.Sprintf("36-byte 0xDEADBEEFCAFE datagrams with increasing counters (likely connectivity checks); %d observed", f.keepalive),
			Count:  f.keepalive,
		})
	}
	if f.doubleRTP > 0 {
		out = append(out, Finding{
			Kind: FindingDoubleRTP,
			Detail: fmt.Sprintf("%d of %d RTP datagrams (%.2f%%) carry two RTP messages sharing SSRC and timestamp",
				f.doubleRTP, f.rtpDgrams, 100*float64(f.doubleRTP)/float64(max(1, f.rtpDgrams))),
			Count: f.doubleRTP,
		})
	}
	if f.zeroSSRC > 0 {
		out = append(out, Finding{
			Kind: FindingZeroSSRC,
			Detail: fmt.Sprintf("%d of %d RTCP feedback messages (%.1f%%) use sender SSRC 0",
				f.zeroSSRC, f.fbTotal, 100*float64(f.zeroSSRC)/float64(max(1, f.fbTotal))),
			Count: f.zeroSSRC,
		})
	}
	if f.hdr6000 > 0 {
		out = append(out, Finding{
			Kind: Finding6000Header,
			Detail: fmt.Sprintf("proprietary headers start 0x6000 with a 2-byte length of the remaining bytes (%d of %d match)",
				f.hdr6000OK, f.hdr6000),
			Count: f.hdr6000,
		})
	}
	if fd, ok := directionCorrelation(f.trailerDirs); ok {
		fd.Kind = FindingDirectionByte
		fd.Detail = "RTCP trailer byte perfectly correlates with packet direction: " + fd.Detail
		out = append(out, fd)
	}
	if fd, ok := directionCorrelation(f.headerDirs); ok {
		fd.Kind = FindingHeaderDirection
		fd.Detail = "proprietary header first byte correlates with packet direction: " + fd.Detail
		out = append(out, fd)
	}
	return out
}

// directionCorrelation reports whether each direction used a single,
// distinct byte value.
func directionCorrelation(dirs map[flow.Direction]map[byte]int) (Finding, bool) {
	if len(dirs) < 2 {
		return Finding{}, false
	}
	values := make(map[flow.Direction]byte)
	total := 0
	for dir, m := range dirs {
		if len(m) != 1 {
			return Finding{}, false
		}
		for v, n := range m {
			values[dir] = v
			total += n
		}
	}
	if values[flow.DirAToB] == values[flow.DirBToA] {
		return Finding{}, false
	}
	return Finding{
		Detail: fmt.Sprintf("0x%02x one way, 0x%02x the other", values[flow.DirAToB], values[flow.DirBToA]),
		Count:  total,
	}, true
}

// detectSSRCReuse looks for SSRC values repeated across different calls
// of the same app and network configuration (the Zoom finding: SSRCs
// are deterministic per configuration, violating RFC 3550's randomness
// expectation).
func detectSSRCReuse(sets map[string][]map[uint32]bool) []Finding {
	var out []Finding
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		calls := sets[key]
		if len(calls) < 2 {
			continue
		}
		// Intersect all calls' SSRC sets.
		inter := make(map[uint32]bool)
		for ssrc := range calls[0] {
			inter[ssrc] = true
		}
		for _, s := range calls[1:] {
			for ssrc := range inter {
				if !s[ssrc] {
					delete(inter, ssrc)
				}
			}
		}
		if len(inter) == 0 {
			continue
		}
		ssrcs := make([]uint32, 0, len(inter))
		for s := range inter {
			ssrcs = append(ssrcs, s)
		}
		sort.Slice(ssrcs, func(i, j int) bool { return ssrcs[i] < ssrcs[j] })
		var app string
		for i, c := range key {
			if c == '/' {
				app = key[:i]
				break
			}
		}
		out = append(out, Finding{
			App:  app,
			Kind: FindingSSRCReuse,
			Detail: fmt.Sprintf("%d SSRC values identical across %d calls (%s): %#x...; RFC 3550 expects random per-session SSRCs",
				len(inter), len(calls), key, ssrcs[0]),
			Count: len(inter),
		})
	}
	return out
}

// dedupFindings merges findings with the same app and kind, keeping the
// first detail and summing counts.
func dedupFindings(in []Finding) []Finding {
	type key struct{ app, kind string }
	seen := make(map[key]int) // index into out
	var out []Finding
	for _, f := range in {
		k := key{f.App, f.Kind}
		if idx, ok := seen[k]; ok {
			out[idx].Count += f.Count
			continue
		}
		seen[k] = len(out)
		out = append(out, f)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
