package mutate

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
)

func seeds() [][]byte {
	r := ice.NewRand(1)
	local := &ice.Agent{Ufrag: "a", Password: "password0123456789012", Controlling: true}
	remote := &ice.Agent{Ufrag: "b", Password: "password0123456789012"}
	return [][]byte{
		local.BindingRequest(r, remote, 1, false).Raw,
		(&rtp.Packet{PayloadType: 96, SequenceNumber: 1, SSRC: 7, Payload: bytes.Repeat([]byte{1}, 80)}).Encode(),
		rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 1, Info: rtcp.SenderInfo{NTPTimestamp: 1}}),
		(&stun.ChannelData{ChannelNumber: 0x4000, Data: bytes.Repeat([]byte{2}, 40)}).Encode(),
	}
}

func TestDeterministic(t *testing.T) {
	s := seeds()
	c1 := New(7).Corpus(s, 50)
	c2 := New(7).Corpus(s, 50)
	if len(c1) != 50 || len(c2) != 50 {
		t.Fatalf("corpus sizes %d %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i], c2[i]) {
			t.Fatalf("corpus differs at %d", i)
		}
	}
	c3 := New(8).Corpus(s, 50)
	same := 0
	for i := range c1 {
		if bytes.Equal(c1[i], c3[i]) {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical corpus")
	}
}

func TestInputNeverModified(t *testing.T) {
	f := New(3)
	orig := seeds()[0]
	snapshot := append([]byte(nil), orig...)
	for i := 0; i < 200; i++ {
		f.Mutate(orig)
	}
	if !bytes.Equal(orig, snapshot) {
		t.Error("Mutate modified its input")
	}
}

func TestEveryStrategyApplies(t *testing.T) {
	f := New(4)
	msg := seeds()[0]
	for _, s := range Strategies {
		out := f.Apply(s, msg)
		if out == nil {
			t.Errorf("%s produced nil", s)
		}
		switch s {
		case StrategyTruncate:
			if len(out) >= len(msg) {
				t.Errorf("%s did not shrink", s)
			}
		case StrategyPrefix, StrategyInjectTLV, StrategyAppendTrailer, StrategyDuplicate:
			if len(out) <= len(msg) {
				t.Errorf("%s did not grow", s)
			}
		}
	}
}

func TestAllowedRestrictsStrategies(t *testing.T) {
	f := New(5)
	f.Allowed = []Strategy{StrategyTruncate}
	msg := seeds()[1]
	for i := 0; i < 20; i++ {
		out, s := f.Mutate(msg)
		if s != StrategyTruncate {
			t.Fatalf("strategy = %s", s)
		}
		if len(out) >= len(msg) {
			t.Fatal("truncate grew the message")
		}
	}
}

func TestEmptyInput(t *testing.T) {
	out, s := New(1).Mutate(nil)
	if out != nil || s != "" {
		t.Errorf("empty input: %v %q", out, s)
	}
	if c := New(1).Corpus(nil, 10); c != nil {
		t.Error("corpus from no seeds")
	}
}

// The repository's own analysis stack must survive any corpus this
// package produces: no panics in DPI or compliance, all invariants
// hold. This is the self-test of the "foundation for fuzz testing".
func TestOwnPipelineSurvivesCorpus(t *testing.T) {
	f := New(99)
	corpus := f.Corpus(seeds(), 3000)
	engine := dpi.NewEngine()
	checker := compliance.NewChecker()

	// Feed as a handful of synthetic streams.
	const streams = 10
	for i := 0; i < streams; i++ {
		var payloads [][]byte
		for j := i; j < len(corpus); j += streams {
			payloads = append(payloads, corpus[j])
		}
		results := engine.InspectStream(payloads)
		session := checker.NewSession()
		for k, r := range results {
			end := 0
			for _, m := range r.Messages {
				if m.Offset < end || m.Offset+m.Length > len(payloads[k]) {
					t.Fatalf("stream %d datagram %d: bad span", i, k)
				}
				end = m.Offset + m.Length
				session.Check(m, time0)
			}
		}
	}
}

var time0 = time.Unix(1700000000, 0).UTC()
