package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtc-compliance/rtcc/internal/alert"
	"github.com/rtc-compliance/rtcc/internal/live"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/trend"
)

// Daemon is the always-on compliance service: a live collector feeding
// epoch-rotated analysis sessions, each finalized epoch appended to
// the persisted compliance trend and served from the metrics endpoint
// as /compliance/trend.
//
// Lifecycle (the reload state machine):
//
//	running --Reload()--> draining: current session Flush+Close, trend
//	    point "reload", config re-read from disk, next session from the
//	    new config. The collector socket survives unless source.listen
//	    changed; the ingest accounting (fed = analyzed + dropped)
//	    accumulates across the swap, so no datagram handed to the
//	    daemon is ever unaccounted.
//	running --epoch timer--> draining: same drain, reason "epoch",
//	    fresh session from the same config.
//	running --Stop()--> draining, reason "shutdown", then Run returns.
//
// The front-end wires SIGHUP to Reload and SIGINT/SIGTERM to Stop.
type Daemon struct {
	cfgPath string
	out     io.Writer // human-readable event log (the daemon's stdout)

	cfg    Config
	runner *Runner
	col    *live.Collector
	reg    *metrics.Registry
	srv    *metrics.Server
	store  *trend.Store

	// engine evaluates alert rules against every appended trend point;
	// dispatch fans its transitions out to the configured sinks. The
	// engine lives for the daemon's lifetime — SIGHUP swaps its rule
	// set in place so firing/debounce state survives reloads.
	engine   *alert.Engine
	dispatch *alert.Dispatcher

	mu        sync.Mutex
	interrupt context.CancelFunc // cancels the in-flight collector read
	stopped   atomic.Bool
	reloadReq atomic.Bool

	total   Accounting // conservation ledger across every session
	started chan struct{}

	// health backs /healthz (guarded by mu).
	epochs     uint64
	reloads    uint64
	lastReload *reloadStatus
}

// reloadStatus records the outcome of the most recent SIGHUP reload.
type reloadStatus struct {
	Time  time.Time `json:"ts"`
	OK    bool      `json:"ok"`
	Error string    `json:"error,omitempty"`
}

// defaultDaemonIdle bounds how long a quiet collector read blocks —
// and therefore how stale a Reload/Stop can find the loop — when the
// config does not name source.idle.
const defaultDaemonIdle = time.Second

// NewDaemon loads the config file and prepares (but does not start)
// the service. The config must name a live source; trace sinks are
// rejected because a daemon has no end-of-run to flush them at.
func NewDaemon(cfgPath string, out io.Writer) (*Daemon, error) {
	d := &Daemon{cfgPath: cfgPath, out: out, started: make(chan struct{})}
	cfg, err := d.loadConfig()
	if err != nil {
		return nil, err
	}
	d.cfg = cfg
	return d, nil
}

// loadConfig re-reads the config file with daemon validation.
func (d *Daemon) loadConfig() (Config, error) {
	var cfg Config
	if err := LoadFile(&cfg, d.cfgPath); err != nil {
		return cfg, err
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Source.Kind != SourceLive {
		return cfg, fmt.Errorf("pipeline: daemon requires source.kind \"live\", got %q", cfg.Source.Kind)
	}
	if cfg.Sinks.TraceOut != "" || cfg.Sinks.Explain != "" {
		return cfg, fmt.Errorf("pipeline: daemon cannot run trace sinks (sinks.trace_out, sinks.explain): there is no end-of-run to flush them at")
	}
	return cfg, nil
}

// Addr reports the collector's bound address once Run has started
// (blocks until then). Useful with an ephemeral source.listen port.
func (d *Daemon) Addr() string {
	<-d.started
	return d.col.Addr()
}

// MetricsAddr reports the metrics server's bound address once Run has
// started ("" when metrics are disabled).
func (d *Daemon) MetricsAddr() string {
	<-d.started
	if d.srv == nil {
		return ""
	}
	return d.srv.Addr()
}

// Total returns the cumulative ingest accounting.
func (d *Daemon) Total() Accounting {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Stop initiates a graceful shutdown: the current session drains, a
// final trend point is recorded, and Run returns nil.
func (d *Daemon) Stop() {
	d.stopped.Store(true)
	d.wake()
}

// Reload initiates a graceful config reload (the SIGHUP path).
func (d *Daemon) Reload() {
	d.reloadReq.Store(true)
	d.wake()
}

// wake cancels the in-flight collector read so the loop notices a
// Stop/Reload without waiting out the idle timeout.
func (d *Daemon) wake() {
	d.mu.Lock()
	if d.interrupt != nil {
		d.interrupt()
	}
	d.mu.Unlock()
}

// Run starts the service and blocks until Stop. The error path covers
// setup failures and broken sinks; signal-driven shutdown returns nil.
func (d *Daemon) Run() error {
	store, err := trend.Open(d.cfg.Daemon.TrendFile, d.cfg.Daemon.TrendKeep)
	if err != nil {
		return err
	}
	d.store = store
	defer store.Close()

	d.reg = metrics.NewRegistry()
	d.engine = alert.NewEngine(d.cfg.Alerts.RuleList(), d.reg)
	d.dispatch = alert.NewDispatcher(d.cfg.Alerts.BuildSinks(d.out),
		d.cfg.Alerts.Retries, d.cfg.Alerts.Backoff.Std(), d.out, d.reg)
	if addr := d.cfg.Sinks.MetricsAddr; addr != "" {
		srv, err := metrics.ServeWith(addr, d.reg, map[string]http.Handler{
			"/compliance/trend":  store.Handler(),
			"/compliance/alerts": d.engine.Handler(),
			"/healthz":           d.healthzHandler(),
		})
		if err != nil {
			return err
		}
		d.srv = srv
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), metrics.DefaultShutdownTimeout)
			defer cancel()
			d.srv.Shutdown(ctx) //nolint:errcheck // falls back to hard close internally
		}()
	}

	if err := d.listen(); err != nil {
		return err
	}
	defer d.col.Close()
	if d.runner, err = NewRunner(d.cfg, d.reg); err != nil {
		return err
	}
	defer d.runner.Close()

	close(d.started)
	fmt.Fprintf(d.out, "daemon: collecting on %s (epoch %v, trend %s)\n",
		d.col.Addr(), d.cfg.Daemon.epoch(), trendName(store))
	if d.srv != nil {
		fmt.Fprintf(d.out, "daemon: metrics and /compliance/trend on http://%s\n", d.srv.Addr())
	}

	for !d.stopped.Load() {
		if d.reloadReq.CompareAndSwap(true, false) {
			err := d.applyReload()
			if err != nil {
				// A bad config on disk must not kill a healthy daemon:
				// log and keep running the previous config.
				fmt.Fprintf(d.out, "daemon: reload failed, keeping previous config: %v\n", err)
			}
			st := &reloadStatus{Time: time.Now().UTC(), OK: err == nil}
			if err != nil {
				st.Error = err.Error()
			}
			d.mu.Lock()
			d.reloads++
			d.lastReload = st
			d.mu.Unlock()
		}
		if err := d.runEpoch(); err != nil {
			return err
		}
	}
	fmt.Fprintf(d.out, "daemon: drained, %d datagrams fed = %d analyzed + %d dropped\n",
		d.total.Fed, d.total.Analyzed, d.total.Dropped)
	return nil
}

func trendName(s *trend.Store) string {
	if s.Path() == "" {
		return "in memory"
	}
	return s.Path()
}

// listen (re)binds the collector socket per the current config.
func (d *Daemon) listen() error {
	col, err := live.Listen(d.cfg.Source.Listen)
	if err != nil {
		return err
	}
	col.IdleTimeout = d.cfg.Source.Idle.Std()
	if col.IdleTimeout <= 0 {
		col.IdleTimeout = defaultDaemonIdle
	}
	col.Metrics = d.reg
	d.col = col
	return nil
}

// applyReload re-reads the config file and swaps the runner — the
// already-drained previous session has banked its accounting, so the
// swap loses nothing. The collector socket is kept unless
// source.listen changed; the metrics server and trend store are fixed
// for the process lifetime (changing them needs a restart, which the
// persisted trend survives).
func (d *Daemon) applyReload() error {
	cfg, err := d.loadConfig()
	if err != nil {
		return err
	}
	runner, err := NewRunner(cfg, d.reg)
	if err != nil {
		return err
	}
	if cfg.Sinks.MetricsAddr != d.cfg.Sinks.MetricsAddr {
		fmt.Fprintf(d.out, "daemon: reload: sinks.metrics_addr change ignored (restart to move the metrics server)\n")
	}
	if cfg.Daemon.TrendFile != d.cfg.Daemon.TrendFile {
		fmt.Fprintf(d.out, "daemon: reload: daemon.trend_file change ignored (restart to move the trend store)\n")
	}
	oldListen := d.cfg.Source.Listen
	d.runner.Close()
	d.cfg, d.runner = cfg, runner
	// Swap the alert rules in place: firing/debounce state carries over
	// for rules that still exist (matched by name), so a reload cannot
	// re-fire an active alert or forget one. Sinks are rebuilt (the
	// config may have repointed the webhook or exec command).
	d.engine.Swap(cfg.Alerts.RuleList())
	d.dispatch = alert.NewDispatcher(cfg.Alerts.BuildSinks(d.out),
		cfg.Alerts.Retries, cfg.Alerts.Backoff.Std(), d.out, d.reg)
	if cfg.Source.Listen != oldListen {
		d.col.Close()
		if err := d.listen(); err != nil {
			return fmt.Errorf("pipeline: rebinding %s: %w", cfg.Source.Listen, err)
		}
		fmt.Fprintf(d.out, "daemon: reloaded, now collecting on %s\n", d.col.Addr())
		return nil
	}
	// Idle may have changed even when the address did not.
	d.col.IdleTimeout = d.cfg.Source.Idle.Std()
	if d.col.IdleTimeout <= 0 {
		d.col.IdleTimeout = defaultDaemonIdle
	}
	fmt.Fprintf(d.out, "daemon: reloaded config from %s\n", d.cfgPath)
	return nil
}

// runEpoch runs one analysis session until the epoch timer, a reload,
// or a stop ends it, then drains and records the trend point.
func (d *Daemon) runEpoch() error {
	sess, err := d.runner.NewLiveSession()
	if err != nil {
		return err
	}
	rb := live.NewReorderBuffer(d.cfg.Source.Reorder, sess.Push)

	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Daemon.epoch())
	d.mu.Lock()
	d.interrupt = cancel
	d.mu.Unlock()
	for ctx.Err() == nil && !d.stopped.Load() && !d.reloadReq.Load() {
		if _, err := d.col.Stream(ctx, 0, rb.Push); err != nil {
			// A sink error (broken analyzer) is fatal; idle and
			// cancellation return nil and loop here.
			d.clearInterrupt(cancel)
			return err
		}
	}
	d.clearInterrupt(cancel)

	// Drain: reorder buffer, staged batch, shard queues — then close
	// the session and bank its ledger before anything else can fail.
	if err := rb.Flush(); err != nil {
		return err
	}
	if err := sess.Flush(); err != nil {
		return err
	}
	acct := sess.Accounting()
	ca, err := sess.Close()
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.total.Add(acct)
	d.epochs++
	d.mu.Unlock()

	reason := "epoch"
	switch {
	case d.stopped.Load():
		reason = "shutdown"
	case d.reloadReq.Load():
		reason = "reload"
	}
	if acct.Fed == 0 {
		return nil // a quiet epoch leaves no trend point
	}
	p := Point(time.Now().UTC(), reason, ca, acct)
	if err := d.store.Append(p); err != nil {
		return err
	}
	if err := d.runner.WriteVerdict(p.Time, reason, ca, acct); err != nil {
		return err
	}
	fmt.Fprintf(d.out, "daemon: epoch closed (%s): app=%s fed=%d analyzed=%d dropped=%d types=%d/%d\n",
		reason, p.App, acct.Fed, acct.Analyzed, acct.Dropped, p.TypesCompliant, p.TypesTotal)
	// Mirror the epoch's QoE summary into the metrics registry (gauges
	// labeled by app); nil summary or registry is a no-op.
	p.QoE.Publish(d.reg, p.App)
	// Evaluate the alert rules against the point just persisted and
	// deliver any transitions. Delivery failures are contained by the
	// dispatcher; they never kill the epoch loop.
	for _, ev := range d.engine.Observe(p) {
		d.dispatch.Dispatch(ev)
	}
	return nil
}

// healthzHandler serves the daemon's readiness report: epoch progress,
// last reload outcome, and ingest back-pressure accounting. Status is
// "ok", or "degraded" when the most recent reload failed (the daemon
// keeps serving the previous config, so it stays HTTP 200 — a
// supervisor distinguishes the cases from the body).
func (d *Daemon) healthzHandler() http.Handler {
	type healthz struct {
		Status       string        `json:"status"`
		Epochs       uint64        `json:"epochs"`
		EpochSeconds float64       `json:"epoch_seconds"`
		Reloads      uint64        `json:"reloads"`
		LastReload   *reloadStatus `json:"last_reload,omitempty"`
		Backpressure struct {
			Policy   string `json:"policy"`
			Shards   int    `json:"shards"`
			Fed      uint64 `json:"fed"`
			Analyzed uint64 `json:"analyzed"`
			Dropped  uint64 `json:"dropped"`
		} `json:"backpressure"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d.mu.Lock()
		h := healthz{
			Status:       "ok",
			Epochs:       d.epochs,
			EpochSeconds: d.cfg.Daemon.epoch().Seconds(),
			Reloads:      d.reloads,
			LastReload:   d.lastReload,
		}
		if d.lastReload != nil && !d.lastReload.OK {
			h.Status = "degraded"
		}
		h.Backpressure.Policy = d.cfg.Exec.Policy
		if h.Backpressure.Policy == "" {
			h.Backpressure.Policy = "block"
		}
		h.Backpressure.Shards = d.cfg.Exec.Shards
		if h.Backpressure.Shards < 1 {
			h.Backpressure.Shards = 1 // serial path: one analyzer
		}
		h.Backpressure.Fed = d.total.Fed
		h.Backpressure.Analyzed = d.total.Analyzed
		h.Backpressure.Dropped = d.total.Dropped
		d.mu.Unlock()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h) //nolint:errcheck // client gone
	})
}

// clearInterrupt retires the epoch's cancel func (no-op if Stop or
// Reload already swapped it away).
func (d *Daemon) clearInterrupt(cancel context.CancelFunc) {
	d.mu.Lock()
	if d.interrupt != nil {
		d.interrupt = nil
	}
	d.mu.Unlock()
	cancel()
}
