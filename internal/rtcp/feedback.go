package rtcp

import (
	"errors"
	"fmt"
	"math"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// Feedback Control Information (FCI) codecs for the feedback formats
// WebRTC-derived applications actually send: Generic NACK (RFC 4585
// §6.2.1), Transport-Wide Congestion Control feedback
// (draft-holmer-rmcat-transport-wide-cc-extensions, universally
// deployed), and REMB (draft-alvestrand-rmcat-remb, the application
// layer feedback every studied app's ancestor used). The generators
// emit structurally valid FCIs and the compliance layer can parse them
// back.

// ErrBadFCI marks malformed feedback control information.
var ErrBadFCI = errors.New("rtcp: malformed FCI")

// NackPair is one Generic NACK entry: a packet ID and a bitmask of the
// following 16 sequence numbers.
type NackPair struct {
	PacketID uint16
	// BLP has bit k set when packet PacketID+k+1 is also lost.
	BLP uint16
}

// Lost expands the pair into the sequence numbers it reports lost.
func (n NackPair) Lost() []uint16 {
	out := []uint16{n.PacketID}
	for k := 0; k < 16; k++ {
		if n.BLP&(1<<k) != 0 {
			out = append(out, n.PacketID+uint16(k)+1)
		}
	}
	return out
}

// EncodeNackFCI serializes Generic NACK pairs.
func EncodeNackFCI(pairs []NackPair) []byte {
	w := bytesutil.NewWriter(4 * len(pairs))
	for _, p := range pairs {
		w.Uint16(p.PacketID)
		w.Uint16(p.BLP)
	}
	return w.Bytes()
}

// DecodeNackFCI parses Generic NACK pairs.
func DecodeNackFCI(fci []byte) ([]NackPair, error) {
	if len(fci) == 0 || len(fci)%4 != 0 {
		return nil, fmt.Errorf("%w: NACK FCI length %d", ErrBadFCI, len(fci))
	}
	r := bytesutil.NewReader(fci)
	pairs := make([]NackPair, 0, len(fci)/4)
	for r.Remaining() > 0 {
		pairs = append(pairs, NackPair{PacketID: r.Uint16(), BLP: r.Uint16()})
	}
	return pairs, nil
}

// TWCC packet status symbols (2-bit).
const (
	TWCCNotReceived uint8 = 0
	TWCCSmallDelta  uint8 = 1
	TWCCLargeDelta  uint8 = 2
)

// TWCCFeedback is a decoded transport-wide congestion control feedback
// FCI. Only run-length chunks are used by the encoder; the decoder also
// understands status-vector chunks.
type TWCCFeedback struct {
	BaseSequence    uint16
	PacketCount     uint16
	ReferenceTimeMS int64 // reference time in milliseconds (64 ms units on the wire)
	FeedbackCount   uint8
	// Statuses holds one symbol per packet starting at BaseSequence.
	Statuses []uint8
	// DeltasUS holds receive deltas in microseconds for each received
	// packet, in order.
	DeltasUS []int64
}

// EncodeTWCCFCI serializes the feedback with run-length chunks.
func EncodeTWCCFCI(fb TWCCFeedback) ([]byte, error) {
	if len(fb.Statuses) != int(fb.PacketCount) {
		return nil, fmt.Errorf("%w: %d statuses for %d packets", ErrBadFCI, len(fb.Statuses), fb.PacketCount)
	}
	w := bytesutil.NewWriter(16)
	w.Uint16(fb.BaseSequence)
	w.Uint16(fb.PacketCount)
	ref := fb.ReferenceTimeMS / 64
	w.Uint24(uint32(ref) & 0xffffff)
	w.Uint8(fb.FeedbackCount)
	// Run-length chunks: top bit 0, 2-bit symbol, 13-bit run length.
	i := 0
	for i < len(fb.Statuses) {
		sym := fb.Statuses[i]
		if sym > TWCCLargeDelta {
			return nil, fmt.Errorf("%w: status symbol %d", ErrBadFCI, sym)
		}
		run := 1
		for i+run < len(fb.Statuses) && fb.Statuses[i+run] == sym && run < 0x1fff {
			run++
		}
		w.Uint16(uint16(sym)<<13 | uint16(run))
		i += run
	}
	// Receive deltas.
	di := 0
	for _, sym := range fb.Statuses {
		switch sym {
		case TWCCSmallDelta:
			if di >= len(fb.DeltasUS) {
				return nil, fmt.Errorf("%w: missing delta", ErrBadFCI)
			}
			d := fb.DeltasUS[di] / 250
			if d < 0 || d > math.MaxUint8 {
				return nil, fmt.Errorf("%w: small delta %dus out of range", ErrBadFCI, fb.DeltasUS[di])
			}
			w.Uint8(uint8(d))
			di++
		case TWCCLargeDelta:
			if di >= len(fb.DeltasUS) {
				return nil, fmt.Errorf("%w: missing delta", ErrBadFCI)
			}
			d := fb.DeltasUS[di] / 250
			if d < math.MinInt16 || d > math.MaxInt16 {
				return nil, fmt.Errorf("%w: large delta %dus out of range", ErrBadFCI, fb.DeltasUS[di])
			}
			w.Uint16(uint16(int16(d)))
			di++
		}
	}
	w.Pad(4)
	return w.Bytes(), nil
}

// DecodeTWCCFCI parses a transport-wide feedback FCI.
func DecodeTWCCFCI(fci []byte) (TWCCFeedback, error) {
	r := bytesutil.NewReader(fci)
	fb := TWCCFeedback{
		BaseSequence: r.Uint16(),
		PacketCount:  r.Uint16(),
	}
	ref := r.Uint24()
	fb.FeedbackCount = r.Uint8()
	if r.Failed() {
		return fb, fmt.Errorf("%w: TWCC header", ErrBadFCI)
	}
	// Sign-extend the 24-bit reference time.
	refSigned := int64(ref)
	if ref&0x800000 != 0 {
		refSigned -= 1 << 24
	}
	fb.ReferenceTimeMS = refSigned * 64

	// Status chunks.
	for len(fb.Statuses) < int(fb.PacketCount) {
		chunk := r.Uint16()
		if r.Failed() {
			return fb, fmt.Errorf("%w: truncated status chunks", ErrBadFCI)
		}
		if chunk&0x8000 == 0 {
			// Run length chunk.
			sym := uint8(chunk >> 13 & 0b11)
			run := int(chunk & 0x1fff)
			if run == 0 {
				return fb, fmt.Errorf("%w: zero run length", ErrBadFCI)
			}
			for i := 0; i < run && len(fb.Statuses) < int(fb.PacketCount); i++ {
				fb.Statuses = append(fb.Statuses, sym)
			}
		} else if chunk&0x4000 == 0 {
			// One-bit status vector: 14 symbols, received=small delta.
			for i := 13; i >= 0 && len(fb.Statuses) < int(fb.PacketCount); i-- {
				if chunk&(1<<i) != 0 {
					fb.Statuses = append(fb.Statuses, TWCCSmallDelta)
				} else {
					fb.Statuses = append(fb.Statuses, TWCCNotReceived)
				}
			}
		} else {
			// Two-bit status vector: 7 symbols.
			for i := 6; i >= 0 && len(fb.Statuses) < int(fb.PacketCount); i-- {
				sym := uint8(chunk >> (2 * i) & 0b11)
				if sym > TWCCLargeDelta {
					return fb, fmt.Errorf("%w: reserved status symbol", ErrBadFCI)
				}
				fb.Statuses = append(fb.Statuses, sym)
			}
		}
	}
	// Deltas.
	for _, sym := range fb.Statuses {
		switch sym {
		case TWCCSmallDelta:
			d := r.Uint8()
			if r.Failed() {
				return fb, fmt.Errorf("%w: truncated deltas", ErrBadFCI)
			}
			fb.DeltasUS = append(fb.DeltasUS, int64(d)*250)
		case TWCCLargeDelta:
			d := int16(r.Uint16())
			if r.Failed() {
				return fb, fmt.Errorf("%w: truncated deltas", ErrBadFCI)
			}
			fb.DeltasUS = append(fb.DeltasUS, int64(d)*250)
		}
	}
	return fb, nil
}

// REMB is a decoded Receiver Estimated Maximum Bitrate message (the
// application-layer feedback with unique identifier "REMB").
type REMB struct {
	BitrateBPS uint64
	SSRCs      []uint32
}

// EncodeREMBFCI serializes a REMB application-layer feedback FCI.
func EncodeREMBFCI(remb REMB) ([]byte, error) {
	if len(remb.SSRCs) == 0 || len(remb.SSRCs) > 255 {
		return nil, fmt.Errorf("%w: REMB with %d SSRCs", ErrBadFCI, len(remb.SSRCs))
	}
	// Bitrate is mantissa * 2^exp with a 6-bit exponent and 18-bit
	// mantissa.
	exp := 0
	mantissa := remb.BitrateBPS
	for mantissa >= 1<<18 {
		mantissa >>= 1
		exp++
	}
	if exp > 63 {
		return nil, fmt.Errorf("%w: bitrate %d unrepresentable", ErrBadFCI, remb.BitrateBPS)
	}
	w := bytesutil.NewWriter(8 + 4*len(remb.SSRCs))
	w.Write([]byte("REMB"))
	w.Uint8(uint8(len(remb.SSRCs)))
	w.Uint8(uint8(exp<<2) | uint8(mantissa>>16))
	w.Uint16(uint16(mantissa))
	for _, s := range remb.SSRCs {
		w.Uint32(s)
	}
	return w.Bytes(), nil
}

// DecodeREMBFCI parses a REMB FCI.
func DecodeREMBFCI(fci []byte) (REMB, error) {
	r := bytesutil.NewReader(fci)
	ident := r.Bytes(4)
	if r.Failed() || string(ident) != "REMB" {
		return REMB{}, fmt.Errorf("%w: missing REMB identifier", ErrBadFCI)
	}
	n := int(r.Uint8())
	b0 := r.Uint8()
	mLow := r.Uint16()
	if r.Failed() {
		return REMB{}, fmt.Errorf("%w: REMB header", ErrBadFCI)
	}
	exp := b0 >> 2
	mantissa := uint64(b0&0b11)<<16 | uint64(mLow)
	remb := REMB{BitrateBPS: mantissa << exp}
	for i := 0; i < n; i++ {
		remb.SSRCs = append(remb.SSRCs, r.Uint32())
	}
	if r.Failed() {
		return REMB{}, fmt.Errorf("%w: REMB SSRC list", ErrBadFCI)
	}
	return remb, nil
}
