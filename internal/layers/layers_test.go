package layers

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/rtc-compliance/rtcc/internal/pcap"
)

var (
	addrA = netip.MustParseAddr("192.168.1.10")
	addrB = netip.MustParseAddr("203.0.113.7")
	addr6 = netip.MustParseAddr("2001:db8::1")
	addr7 = netip.MustParseAddr("fe80::2")
)

func TestUDPv4RoundTrip(t *testing.T) {
	payload := []byte("hello rtc")
	frame := EncodeUDPv4(addrA, addrB, 5004, 3478, payload)
	pkt, err := Decode(pcap.LinkTypeRaw, frame)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.IPv4 == nil || pkt.UDP == nil {
		t.Fatal("missing layers")
	}
	if pkt.Src() != addrA || pkt.Dst() != addrB {
		t.Errorf("addrs = %v -> %v", pkt.Src(), pkt.Dst())
	}
	proto, sp, dp := pkt.Transport()
	if proto != IPProtocolUDP || sp != 5004 || dp != 3478 {
		t.Errorf("transport = %v %d %d", proto, sp, dp)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Errorf("payload = %q", pkt.Payload)
	}
	if pkt.IPv4.TTL != 64 || pkt.IPv4.Protocol != IPProtocolUDP {
		t.Errorf("ipv4 fields: ttl=%d proto=%v", pkt.IPv4.TTL, pkt.IPv4.Protocol)
	}
}

func TestUDPv4ChecksumValid(t *testing.T) {
	frame := EncodeUDPv4(addrA, addrB, 1234, 5678, []byte{1, 2, 3})
	// Verify IPv4 header checksum folds to zero.
	if got := foldChecksum(checksum16(0, frame[:20])); got != 0 {
		t.Errorf("ipv4 checksum verify = %#04x, want 0", got)
	}
	// Verify UDP checksum over pseudo-header + segment folds to zero.
	var pseudo [12]byte
	copy(pseudo[0:4], frame[12:16])
	copy(pseudo[4:8], frame[16:20])
	pseudo[9] = byte(IPProtocolUDP)
	pseudo[10] = frame[24]
	pseudo[11] = frame[25]
	if got := foldChecksum(checksum16(checksum16(0, pseudo[:]), frame[20:])); got != 0 {
		t.Errorf("udp checksum verify = %#04x, want 0", got)
	}
}

func TestTCPv4RoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\n")
	seg := TCP{SrcPort: 49152, DstPort: 443, Seq: 1000, Ack: 2000, Flags: TCPPsh | TCPAck, Window: 65535}
	frame := EncodeTCPv4(addrA, addrB, seg, payload)
	pkt, err := Decode(pcap.LinkTypeRaw, frame)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.TCP == nil {
		t.Fatal("no TCP layer")
	}
	if pkt.TCP.SrcPort != 49152 || pkt.TCP.DstPort != 443 ||
		pkt.TCP.Seq != 1000 || pkt.TCP.Ack != 2000 ||
		pkt.TCP.Flags != TCPPsh|TCPAck || pkt.TCP.Window != 65535 {
		t.Errorf("tcp header mismatch: %+v", pkt.TCP)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Errorf("payload = %q", pkt.Payload)
	}
}

func TestUDPv6RoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad}
	frame := EncodeUDPv6(addr6, addr7, 9000, 9001, payload)
	pkt, err := Decode(pcap.LinkTypeRaw, frame)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.IPv6 == nil || pkt.UDP == nil {
		t.Fatal("missing layers")
	}
	if pkt.Src() != addr6 || pkt.Dst() != addr7 {
		t.Errorf("addrs = %v -> %v", pkt.Src(), pkt.Dst())
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Errorf("payload = %v", pkt.Payload)
	}
	if pkt.IPv6.NextHeader != IPProtocolUDP || pkt.IPv6.HopLimit != 64 {
		t.Errorf("ipv6 fields: %+v", pkt.IPv6)
	}
}

func TestEthernetFrame(t *testing.T) {
	inner := EncodeUDPv4(addrA, addrB, 1, 2, []byte("x"))
	eth := make([]byte, 14+len(inner))
	copy(eth[0:6], []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff})
	copy(eth[6:12], []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	eth[12], eth[13] = 0x08, 0x00
	copy(eth[14:], inner)

	pkt, err := Decode(pcap.LinkTypeEthernet, eth)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Ethernet == nil || pkt.Ethernet.EtherType != EtherTypeIPv4 {
		t.Fatal("no ethernet layer")
	}
	if pkt.Ethernet.SrcMAC != [6]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66} {
		t.Errorf("src mac = %x", pkt.Ethernet.SrcMAC)
	}
	if pkt.UDP == nil || !bytes.Equal(pkt.Payload, []byte("x")) {
		t.Error("inner decode failed")
	}
}

func TestDecodeTrailingPaddingTrimmed(t *testing.T) {
	frame := EncodeUDPv4(addrA, addrB, 1, 2, []byte("abc"))
	padded := append(append([]byte{}, frame...), 0, 0, 0, 0) // link-layer pad
	pkt, err := Decode(pcap.LinkTypeRaw, padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, []byte("abc")) {
		t.Errorf("payload = %q, want abc (padding not trimmed)", pkt.Payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		lt   pcap.LinkType
		data []byte
		want error
	}{
		{"empty raw", pcap.LinkTypeRaw, nil, ErrTruncated},
		{"short ipv4", pcap.LinkTypeRaw, []byte{0x45, 0, 0}, ErrTruncated},
		{"bad version", pcap.LinkTypeRaw, []byte{0x95, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, ErrUnsupported},
		{"bad ihl", pcap.LinkTypeRaw, append([]byte{0x4f}, make([]byte, 19)...), ErrTruncated},
		{"short ethernet", pcap.LinkTypeEthernet, []byte{1, 2, 3}, ErrTruncated},
		{"unknown ethertype", pcap.LinkTypeEthernet, append(make([]byte, 12), 0x12, 0x34), ErrUnsupported},
		{"unknown linktype", pcap.LinkType(99), []byte{1}, ErrUnsupported},
		{"short ipv6", pcap.LinkTypeRaw, []byte{0x60, 0, 0, 0}, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.lt, tc.data); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeUnknownIPProto(t *testing.T) {
	frame := EncodeUDPv4(addrA, addrB, 1, 2, []byte("abc"))
	frame[9] = 47 // GRE
	// Recompute header checksum so only the protocol is "wrong".
	frame[10], frame[11] = 0, 0
	ck := foldChecksum(checksum16(0, frame[:20]))
	frame[10], frame[11] = byte(ck>>8), byte(ck)
	pkt, err := Decode(pcap.LinkTypeRaw, frame)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if pkt.IPv4 == nil {
		t.Error("IPv4 layer should still be decoded")
	}
}

func TestIPProtocolString(t *testing.T) {
	if IPProtocolUDP.String() != "UDP" || IPProtocolTCP.String() != "TCP" {
		t.Error("known proto strings wrong")
	}
	if IPProtocol(47).String() != "IPPROTO(47)" {
		t.Errorf("unknown proto string = %s", IPProtocol(47))
	}
}

// Property: EncodeUDPv4 → Decode is the identity on (ports, payload) for
// arbitrary payloads.
func TestQuickUDPv4Identity(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		frame := EncodeUDPv4(addrA, addrB, sp, dp, payload)
		pkt, err := Decode(pcap.LinkTypeRaw, frame)
		if err != nil {
			return false
		}
		_, gsp, gdp := pkt.Transport()
		return gsp == sp && gdp == dp && bytes.Equal(pkt.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte, ltSel uint8) bool {
		lts := []pcap.LinkType{pcap.LinkTypeRaw, pcap.LinkTypeEthernet, pcap.LinkTypeNull}
		_, _ = Decode(lts[int(ltSel)%len(lts)], data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
