package quicwire

import (
	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// BuildLong constructs a long-header packet of the given type carrying
// payload (which stands in for the packet number + encrypted payload;
// this package does not implement packet protection). For Initial
// packets, token may be non-nil.
func BuildLong(t LongPacketType, version uint32, dcid, scid, token, payload []byte) []byte {
	w := bytesutil.NewWriter(32 + len(payload))
	first := byte(0x80 | 0x40) // long form + fixed bit
	first |= byte(t) << 4
	// Low 4 bits: reserved + packet-number length; emit a 2-byte packet
	// number length (encoded as 1) as libraries commonly do.
	first |= 0x01
	w.Uint8(first)
	w.Uint32(version)
	w.Uint8(uint8(len(dcid)))
	w.Write(dcid)
	w.Uint8(uint8(len(scid)))
	w.Write(scid)
	if t == TypeInitial {
		AppendVarint(w, uint64(len(token)))
		w.Write(token)
	}
	if t != TypeRetry {
		AppendVarint(w, uint64(len(payload)))
	}
	w.Write(payload)
	return w.Bytes()
}

// BuildShort constructs a short-header packet with the given DCID and
// payload bytes.
func BuildShort(dcid, payload []byte) []byte {
	w := bytesutil.NewWriter(1 + len(dcid) + len(payload))
	// Fixed bit set, spin 0, key phase 0, 2-byte packet number.
	w.Uint8(0x40 | 0x01)
	w.Write(dcid)
	w.Write(payload)
	return w.Bytes()
}

// BuildVersionNegotiation constructs a Version Negotiation packet.
func BuildVersionNegotiation(dcid, scid []byte, versions []uint32) []byte {
	w := bytesutil.NewWriter(16)
	w.Uint8(0x80) // form bit only; fixed bit unspecified for VN
	w.Uint32(VersionNegotiation)
	w.Uint8(uint8(len(dcid)))
	w.Write(dcid)
	w.Uint8(uint8(len(scid)))
	w.Write(scid)
	for _, v := range versions {
		w.Uint32(v)
	}
	return w.Bytes()
}
