// Package trace assembles complete experiment captures: the synthetic
// RTC call from internal/appsim, the background noise that the filter
// pipeline must remove, and the three annotated phases of §3.1.2
// (pre-call, call, post-call). Captures can be held in memory or
// exported as pcap files identical in structure to what the paper's
// Wireshark/RVI setup produced (raw-IP link type).
package trace

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/natsim"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

// CaptureConfig parameterizes one experiment capture (one call).
type CaptureConfig struct {
	App     appsim.App
	Network appsim.Network
	Seed    uint64
	// Start is the call-initiation time.
	Start time.Time
	// CallDuration is the call length (paper: 5 minutes).
	CallDuration time.Duration
	// PrePost is the pre-call and post-call capture length (paper: 60
	// seconds each).
	PrePost time.Duration
	// MediaRate is forwarded to the app simulator.
	MediaRate int
	// DTLS makes the app simulator emit a DTLS-SRTP key-establishment
	// handshake before the media (see appsim.CallConfig.DTLS).
	DTLS bool
	// Background enables the unrelated-traffic generator.
	Background bool
	// BackgroundBulk, when Background is set, adds approximately this
	// many MTU-sized TCP segments of unrelated bulk downloads spread
	// over the capture — the traffic volume that dominates real capture
	// files. Zero keeps the light fixed-size background mix.
	BackgroundBulk int
	// Impair applies a network-impairment profile to the call's traffic
	// (not the background) between emission and capture, seeded by
	// Seed. The zero profile is a pass-through.
	Impair natsim.Profile
	// Burst, BitrateVar, and FrameRate are forwarded to the app
	// simulator's frame-granular video burster (appsim.CallConfig).
	Burst      bool
	BitrateVar float64
	FrameRate  int
}

// Capture is one assembled experiment capture.
type Capture struct {
	Config CaptureConfig
	// Mode is the transmission mode the call used.
	Mode appsim.Mode
	// Events are all packets (call + background) in time order.
	Events []appsim.Dgram
	// CallStart and CallEnd delimit the annotated call window.
	CallStart, CallEnd time.Time
	// RTCEvents counts the events that came from the RTC call (ground
	// truth for filter evaluation), after impairment.
	RTCEvents int
	// Impair is the impairment accounting when Config.Impair is active.
	Impair natsim.ImpairStats
}

// Generate builds one capture.
func Generate(cfg CaptureConfig) (*Capture, error) {
	if cfg.CallDuration <= 0 {
		return nil, fmt.Errorf("trace: call duration must be positive")
	}
	if cfg.PrePost < 0 {
		return nil, fmt.Errorf("trace: negative pre/post duration")
	}
	call, err := appsim.Generate(appsim.CallConfig{
		App:        cfg.App,
		Network:    cfg.Network,
		Seed:       cfg.Seed,
		Start:      cfg.Start,
		Duration:   cfg.CallDuration,
		MediaRate:  cfg.MediaRate,
		DTLS:       cfg.DTLS,
		Burst:      cfg.Burst,
		BitrateVar: cfg.BitrateVar,
		FrameRate:  cfg.FrameRate,
	})
	if err != nil {
		return nil, err
	}
	cap := &Capture{
		Config:    cfg,
		Mode:      call.Mode,
		CallStart: call.CallStart,
		CallEnd:   call.CallEnd,
	}
	events := call.Events
	if cfg.Impair.Active() {
		events, cap.Impair = cfg.Impair.ImpairWithStats(cfg.Seed, events)
	}
	cap.RTCEvents = len(events)
	cap.Events = append(cap.Events, events...)
	if cfg.Background {
		bg := appsim.GenerateBackground(appsim.BackgroundConfig{
			Seed:      cfg.Seed,
			PreStart:  cfg.Start.Add(-cfg.PrePost),
			CallStart: call.CallStart,
			CallEnd:   call.CallEnd,
			PostEnd:   call.CallEnd.Add(cfg.PrePost),
			Device:    deviceAddr(cfg.Network),
			LANPeer:   lanPeer(cfg.Network),
			Bulk:      cfg.BackgroundBulk,
		})
		cap.Events = append(cap.Events, bg...)
	}
	sort.SliceStable(cap.Events, func(i, j int) bool {
		return cap.Events[i].At.Before(cap.Events[j].At)
	})
	return cap, nil
}

func deviceAddr(n appsim.Network) (a addr) {
	if n == appsim.Cellular {
		return mustAddr("10.21.5.8")
	}
	return mustAddr("192.168.1.10")
}

func lanPeer(n appsim.Network) addr {
	if n == appsim.Cellular {
		return mustAddr("10.21.5.99")
	}
	return mustAddr("192.168.1.30")
}

// Frames encodes the capture's events as raw-IP frames with timestamps,
// maintaining simple per-stream TCP sequence numbers so segment payloads
// reassemble trivially.
func (c *Capture) Frames() []pcap.Packet {
	type seqKey struct{ src, dst string }
	seqs := make(map[seqKey]uint32)
	out := make([]pcap.Packet, 0, len(c.Events))
	for _, ev := range c.Events {
		var frame []byte
		switch {
		case ev.Proto == layers.IPProtocolTCP:
			k := seqKey{ev.Src.String(), ev.Dst.String()}
			seq := seqs[k]
			seqs[k] = seq + uint32(len(ev.Payload))
			frame = layers.EncodeTCPv4(ev.Src.Addr(), ev.Dst.Addr(), layers.TCP{
				SrcPort: ev.Src.Port(),
				DstPort: ev.Dst.Port(),
				Seq:     1000 + seq,
				Flags:   ev.TCPFlags,
				Window:  65535,
			}, ev.Payload)
		case ev.Src.Addr().Is6():
			frame = layers.EncodeUDPv6(ev.Src.Addr(), ev.Dst.Addr(), ev.Src.Port(), ev.Dst.Port(), ev.Payload)
		default:
			frame = layers.EncodeUDPv4(ev.Src.Addr(), ev.Dst.Addr(), ev.Src.Port(), ev.Dst.Port(), ev.Payload)
		}
		out = append(out, pcap.Packet{Timestamp: ev.At, Data: frame})
	}
	return out
}

// Input is one fully-assembled analysis input: the encoded frames in
// time order plus the annotated call window. It is the type behind
// core.CaptureInput, defined here so every place that turns a Capture
// into pipeline input shares one constructor.
type Input struct {
	// Label names the application (or capture) in reports.
	Label string
	// LinkType describes the frames.
	LinkType pcap.LinkType
	// Packets are the captured frames in time order.
	Packets []pcap.Packet
	// CallStart and CallEnd delimit the annotated call window.
	CallStart, CallEnd time.Time
}

// Input encodes the capture's events as raw-IP frames and pairs them
// with the annotated call window, ready for analysis.
func (c *Capture) Input() Input {
	return Input{
		Label:     string(c.Config.App),
		LinkType:  pcap.LinkTypeRaw,
		Packets:   c.Frames(),
		CallStart: c.CallStart,
		CallEnd:   c.CallEnd,
	}
}

// WritePCAP writes the capture as a classic pcap file with the raw-IP
// link type (what Apple RVI captures use).
func (c *Capture) WritePCAP(w io.Writer) error {
	pw := pcap.NewWriter(w, pcap.LinkTypeRaw)
	for _, pkt := range c.Frames() {
		if err := pw.WritePacket(pkt); err != nil {
			return err
		}
	}
	return pw.WriteHeader() // ensure header exists even with no packets
}

// MatrixOptions parameterizes the full experiment matrix: every app ×
// every network configuration × Runs repetitions (§3.1.2: 6 × 3 × 6 = 90
// calls in the paper).
type MatrixOptions struct {
	Runs         int
	CallDuration time.Duration
	PrePost      time.Duration
	MediaRate    int
	Start        time.Time
	BaseSeed     uint64
	Background   bool
	// DTLS is forwarded to every capture config.
	DTLS bool
	// Apps optionally restricts the matrix; nil means all six.
	Apps []appsim.App
	// Impair, Burst, BitrateVar, and FrameRate are forwarded to every
	// capture config.
	Impair     natsim.Profile
	Burst      bool
	BitrateVar float64
	FrameRate  int
}

// Matrix expands the options into per-call capture configs. Successive
// calls are spaced so their capture windows do not overlap.
func Matrix(o MatrixOptions) []CaptureConfig {
	if o.Runs <= 0 {
		o.Runs = 1
	}
	apps := o.Apps
	if len(apps) == 0 {
		apps = appsim.Apps
	}
	start := o.Start
	spacing := o.CallDuration + 2*o.PrePost + 10*time.Second
	var out []CaptureConfig
	seed := o.BaseSeed
	for _, app := range apps {
		for _, network := range appsim.Networks {
			for run := 0; run < o.Runs; run++ {
				seed++
				out = append(out, CaptureConfig{
					App:          app,
					Network:      network,
					Seed:         seed,
					Start:        start,
					CallDuration: o.CallDuration,
					PrePost:      o.PrePost,
					MediaRate:    o.MediaRate,
					DTLS:         o.DTLS,
					Background:   o.Background,
					Impair:       o.Impair,
					Burst:        o.Burst,
					BitrateVar:   o.BitrateVar,
					FrameRate:    o.FrameRate,
				})
				start = start.Add(spacing)
			}
		}
	}
	return out
}

// addr is a local alias to keep signatures tidy.
type addr = netip.Addr

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
