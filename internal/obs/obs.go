// Package obs is the pipeline's decision-trace layer: a structured
// record of *why* the measurement pipeline reached each verdict, the
// per-decision complement of internal/metrics' how-much/how-fast
// counters.
//
// Every analyzed capture gets one capture-scoped span; every
// provisionally-RTC stream gets one stream-scoped span whose parent is
// the capture span. Typed events flow through them:
//
//   - stream-admitted / stream-filtered{stage, rule} — the two-stage
//     filter's per-stream verdict (§3.2);
//   - probe{offset, proto, first, outcome} — one Algorithm 1 candidate
//     extraction step: either a prober matched at an offset or the
//     cursor shifted one byte (§4.1.1);
//   - extraction{class} — the per-datagram classification (§4.1.2);
//   - verdict{criterion, msgtype, reason} — one five-criterion
//     compliance judgment (§4.2), with the offending bytes;
//   - finding{kind} — a behavioural finding (§5.3);
//   - stream-evicted / stream-reclassified — streaming-analyzer
//     lifecycle decisions (idle eviction, Close-time reconciliation);
//   - truncated{dropped} — a sampling marker (see below).
//
// Tracing mirrors Options.Metrics: a nil Tracer costs nothing on the
// hot path (one nil pointer branch per probe step), and tracing never
// changes analysis output.
//
// # Determinism
//
// Trace output is byte-identical across serial and parallel runs of the
// same seeded capture. Stream spans buffer their events and are flushed
// by the pipeline at deterministic points (idle eviction during the
// single-goroutine Feed, and the deterministic fold in Close), so the
// Tracer always observes one well-defined order no matter how many
// workers inspected streams concurrently. Event timestamps come from
// the capture, never from the wall clock.
//
// # Sampling
//
// Probe steps dominate trace volume (a 1000-byte fully-proprietary
// datagram is up to 1000 shift events), so each stream span applies a
// deterministic head/tail policy: the first Sampling.Head events are
// kept, the most recent Sampling.Tail are kept in a ring, everything
// between is counted and reported by a truncated{dropped} marker.
// Failing compliance verdicts bypass sampling entirely — `-explain` can
// always name the exact failing criterion for any non-compliant
// message. Per-span sequence numbers are assigned before sampling, so
// gaps in exported seqs identify exactly where events were dropped.
package obs

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Kind identifies the type of one trace event.
type Kind string

// The event taxonomy. Stable: these strings appear in exported JSONL.
const (
	KindCaptureBegin       Kind = "capture-begin"
	KindCaptureEnd         Kind = "capture-end"
	KindStreamAdmitted     Kind = "stream-admitted"
	KindStreamFiltered     Kind = "stream-filtered"
	KindStreamEvicted      Kind = "stream-evicted"
	KindStreamReclassified Kind = "stream-reclassified"
	KindProbeAttempt       Kind = "probe"
	KindExtraction         Kind = "extraction"
	KindCriterionVerdict   Kind = "verdict"
	KindFindingEmitted     Kind = "finding"
	KindTruncated          Kind = "truncated"
)

// Kinds lists every event kind, in taxonomy order.
var Kinds = []Kind{
	KindCaptureBegin, KindCaptureEnd,
	KindStreamAdmitted, KindStreamFiltered,
	KindStreamEvicted, KindStreamReclassified,
	KindProbeAttempt, KindExtraction, KindCriterionVerdict,
	KindFindingEmitted, KindTruncated,
}

// Probe outcomes.
const (
	OutcomeMatch = "match" // a prober validated a message at this offset
	OutcomeShift = "shift" // no prober matched; the cursor advanced one byte
)

// Event is one pipeline decision. The JSON field order is the wire
// schema of the JSONL exporter; rtctrace -lint validates it strictly
// (unknown fields are schema errors).
//
// Field applicability by kind:
//
//	capture-begin/-end    App (end also Detail)
//	stream-admitted       Stream
//	stream-filtered       Stream, Stage, Rule, Detail
//	stream-evicted        Stream
//	stream-reclassified   Stream
//	probe                 Stream, Dgram, Offset, First, Outcome, Proto (on match)
//	extraction            Stream, Dgram, Class, Messages
//	verdict               Stream, Dgram, Offset, TS, Proto, MsgType, Criterion, Reason, Bytes
//	finding               Rule (the finding kind), Detail
//	truncated             Stream, Dropped
//
// Dgram numbers are 1-based (0 means "no datagram context").
type Event struct {
	Kind   Kind   `json:"kind"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Seq    uint64 `json:"seq"`
	App    string `json:"app,omitempty"`
	Stream string `json:"stream,omitempty"`
	TS     string `json:"ts,omitempty"`

	Dgram  int `json:"dgram,omitempty"`
	Offset int `json:"offset,omitempty"`

	Proto   string `json:"proto,omitempty"`
	First   string `json:"first,omitempty"` // first payload byte, two hex digits
	Outcome string `json:"outcome,omitempty"`

	Class    string `json:"class,omitempty"`
	Messages int    `json:"messages,omitempty"`

	Criterion int    `json:"criterion,omitempty"` // 1-5; absent = compliant
	MsgType   string `json:"msgtype,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Bytes     string `json:"bytes,omitempty"` // offending bytes, hex

	Stage  int    `json:"stage,omitempty"` // filter stage 1 or 2
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`

	Dropped int `json:"dropped,omitempty"`
}

// Tracer receives the event stream of one analysis. The pipeline calls
// Emit at deterministic points and never concurrently for one capture,
// but sinks shared across captures must be safe for concurrent use.
type Tracer interface {
	Emit(ev Event)
}

// Sampling is the per-stream-span retention policy: keep the first Head
// events, ring-buffer the last Tail, count the rest. The zero value
// selects the defaults.
type Sampling struct {
	Head int
	Tail int
}

// Default sampling bounds.
const (
	DefaultHead = 96
	DefaultTail = 32
)

func (s Sampling) withDefaults() Sampling {
	if s.Head <= 0 {
		s.Head = DefaultHead
	}
	if s.Tail <= 0 {
		s.Tail = DefaultTail
	}
	return s
}

// SpanID derives the deterministic span identifier for a stream of a
// labelled capture (stream "" yields the capture span). IDs are stable
// across runs and across serial/parallel execution: FNV-64a over the
// label and canonical stream key.
func SpanID(label, stream string) string {
	h := fnv.New64a()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(stream))
	return fmt.Sprintf("%016x", h.Sum64())
}

// CriterionName names a compliance criterion (1-5) as the paper's model
// does; 0 is "compliant". It mirrors proto.Criterion.String without
// importing the registry, so trace tooling stays dependency-light.
func CriterionName(c int) string {
	switch c {
	case 0:
		return "compliant"
	case 1:
		return "message type definition"
	case 2:
		return "header field validity"
	case 3:
		return "attribute type validity"
	case 4:
		return "attribute value validity"
	case 5:
		return "syntax and semantic integrity"
	}
	return fmt.Sprintf("criterion %d", c)
}

// fmtTS renders a capture timestamp; zero times are omitted.
func fmtTS(ts time.Time) string {
	if ts.IsZero() {
		return ""
	}
	return ts.UTC().Format(time.RFC3339Nano)
}

const hexDigits = "0123456789abcdef"

// hexByteTab interns the 256 two-digit byte strings so the per-probe
// First field never allocates (probe events dominate trace volume).
var hexByteTab = func() [256]string {
	var tab [256]string
	for i := range tab {
		tab[i] = string([]byte{hexDigits[i>>4], hexDigits[i&0x0f]})
	}
	return tab
}()

// hexByte renders one byte as two hex digits.
func hexByte(b byte) string {
	return hexByteTab[b]
}

// hexBytes renders a byte window as lowercase hex, truncated to max
// bytes with a trailing ellipsis.
func hexBytes(b []byte, max int) string {
	trunc := false
	if len(b) > max {
		b, trunc = b[:max], true
	}
	out := make([]byte, 0, 2*len(b)+1)
	for _, x := range b {
		out = append(out, hexDigits[x>>4], hexDigits[x&0x0f])
	}
	if trunc {
		out = append(out, '+')
	}
	return string(out)
}
