package dpi

import (
	"bytes"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/obs"
)

// tracedContext builds a stream context wired to a span whose sampling
// is wide enough to keep every event, plus the buffer to read them
// back after Flush.
func tracedContext() (*StreamContext, *obs.Span, *obs.Buffer) {
	buf := obs.NewBuffer(0)
	p := obs.New(buf, "app", obs.Sampling{Head: 1 << 16, Tail: 1}, nil)
	sp := p.StreamSpan("st")
	ctx := NewStreamContext()
	ctx.Span = sp
	return ctx, sp, buf
}

// TestInspectTracedMatchesUntraced pins zero interference at the DPI
// layer: attaching a span must not change extraction output.
func TestInspectTracedMatchesUntraced(t *testing.T) {
	corpus := dispatchCorpus()

	e := NewEngine()
	ctx := NewStreamContext()
	var plain []Result
	for _, p := range corpus {
		plain = append(plain, e.Inspect(p, ctx))
	}

	te := NewEngine()
	tctx, sp, _ := tracedContext()
	var traced []Result
	for _, p := range corpus {
		traced = append(traced, te.Inspect(p, tctx))
	}
	sp.Flush()

	if g, w := summarize(traced), summarize(plain); g != w {
		t.Fatalf("tracing changed extraction:\ntraced:   %s\nuntraced: %s", g, w)
	}
}

// TestInspectTraceEvents checks the event stream Inspect emits: one
// extraction per datagram with 1-based ordinals, one match probe per
// extracted message (carrying the protocol name), and a shift probe
// for every offset the cursor advanced over.
func TestInspectTraceEvents(t *testing.T) {
	corpus := dispatchCorpus()
	e := NewEngine()
	ctx, sp, buf := tracedContext()
	messages := 0
	for _, p := range corpus {
		messages += len(e.Inspect(p, ctx).Messages)
	}
	sp.Flush()
	events := buf.Events()

	matches, shifts := 0, 0
	var extractions []int
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindProbeAttempt:
			switch ev.Outcome {
			case obs.OutcomeMatch:
				matches++
				if ev.Proto == "" {
					t.Errorf("match probe without protocol name: %+v", ev)
				}
			case obs.OutcomeShift:
				shifts++
			default:
				t.Errorf("probe outcome %q", ev.Outcome)
			}
			if ev.Dgram < 1 || ev.Dgram > len(corpus) {
				t.Errorf("probe dgram %d outside 1-%d", ev.Dgram, len(corpus))
			}
		case obs.KindExtraction:
			extractions = append(extractions, ev.Dgram)
			if ev.Class == "" {
				t.Errorf("extraction without class: %+v", ev)
			}
		}
	}
	if matches != messages {
		t.Errorf("match probes = %d, want one per extracted message (%d)", matches, messages)
	}
	// The fully-proprietary filler alone walks >100 offsets.
	if shifts < 100 {
		t.Errorf("shift probes = %d, want >= 100 (filler datagram)", shifts)
	}
	if len(extractions) != len(corpus) {
		t.Fatalf("extraction events = %d, want one per datagram (%d)", len(extractions), len(corpus))
	}
	for i, dgram := range extractions {
		if dgram != i+1 {
			t.Errorf("extraction %d has ordinal %d, want %d", i, dgram, i+1)
		}
	}
	if problems := obs.Lint(events); len(problems) > 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

// TestNilTracerProbePathAllocationFree pins the disabled-tracing cost
// on the probe hot path: with no span attached (the default), scanning
// a fully proprietary datagram must not allocate — the tracing hook is
// one nil check. TestProbePathAllocationFree covers the same invariant
// for a default context; this one makes the contract explicit against
// the obs integration.
func TestNilTracerProbePathAllocationFree(t *testing.T) {
	filler := bytes.Repeat([]byte{0x01}, 1000)
	e := NewEngine()
	ctx := NewStreamContext()
	if ctx.Span != nil {
		t.Fatal("default StreamContext must have no span")
	}
	e.Inspect(filler, ctx)
	if avg := testing.AllocsPerRun(100, func() {
		e.Inspect(filler, ctx)
	}); avg != 0 {
		t.Errorf("nil-tracer probe path allocates: %.1f allocs/op, want 0", avg)
	}
}

// TestNilTracerOverheadBounded compares the nil-tracer probe path
// against the frozen pre-registry baseline on the probe-miss worst
// case. The tracing hook adds one predictable branch per datagram scan
// (≈0% — measure precisely with the BenchmarkDispatchProbeMiss*
// pair); the generous bound here only catches gross regressions, e.g.
// an accidental per-probe interface call, without being flaky under
// CI scheduling noise.
func TestNilTracerOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	filler := bytes.Repeat([]byte{0x01}, 1000)
	const rounds, iters = 5, 2000

	e := NewEngine()
	ctx := NewStreamContext()
	e.Inspect(filler, ctx)
	be := &baselineEngine{MaxOffset: 200}
	bctx := newBaselineContext()
	be.Inspect(filler, bctx)

	best := func(f func()) time.Duration {
		min := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}
	registry := best(func() { e.Inspect(filler, ctx) })
	baseline := best(func() { be.Inspect(filler, bctx) })
	if float64(registry) > 1.5*float64(baseline) {
		t.Errorf("nil-tracer probe path %v vs frozen baseline %v (>1.5x)", registry, baseline)
	}
	t.Logf("probe miss: registry+nil-tracer %v, frozen baseline %v", registry, baseline)
}

// BenchmarkDispatchProbeMissTraced is the traced counterpart of
// BenchmarkDispatchProbeMiss: same worst-case datagram with a span
// attached, measuring the full cost of probe-step emission under the
// head/tail sampling policy. Compare:
//
//	go test ./internal/dpi -run=^$ -bench=BenchmarkDispatchProbeMiss -benchmem
func BenchmarkDispatchProbeMissTraced(b *testing.B) {
	filler := bytes.Repeat([]byte{0x01}, 1000)
	e := NewEngine()
	ctx, _, _ := tracedContext()
	e.Inspect(filler, ctx)
	b.ReportAllocs()
	b.SetBytes(int64(len(filler)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Inspect(filler, ctx)
	}
}
