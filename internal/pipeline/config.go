// Package pipeline is the one composition layer behind every front-end:
// a declarative Config names the capture source, the execution mode, and
// the output sinks, and a Runner assembles the existing engine pieces —
// the streaming core.Analyzer, the sharded ingest tier, the live
// collector — the same way for every binary. Before this layer each
// cmd/ binary wired analyzers, shard tiers, trace files, and metrics
// endpoints by hand; now a front-end parses flags (or a config file)
// into a Config and hands it over. The daemon (Daemon) runs the same
// Config continuously with graceful SIGHUP reload and a persisted
// compliance trend.
package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/rtc-compliance/rtcc/internal/alert"
	"github.com/rtc-compliance/rtcc/internal/appsim"
)

// Source kinds accepted by Config.Source.Kind.
const (
	// SourcePCAP reads a capture file (classic pcap or pcapng, detected
	// from the leading magic).
	SourcePCAP = "pcap"
	// SourceLive receives encapsulated frames on a UDP socket (the
	// rtclive mirror protocol).
	SourceLive = "live"
	// SourceAppsim generates a synthetic capture with the application
	// emulators and analyzes it in memory.
	SourceAppsim = "appsim"
)

// Execution modes derived from Exec: serial (workers<=1, shards<=1),
// worker-parallel stream finalization (workers>1), or sharded ingest
// (shards>1). They are not named in the schema — the ints are the mode.

// Duration is a time.Duration that (un)marshals as a Go duration
// string ("30s", "2m"), the form config files use.
type Duration time.Duration

// UnmarshalJSON accepts a duration string or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(td)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Config is the declarative description of one analysis pipeline: what
// to read, how to execute, and where results go. The zero value plus a
// source is a valid serial pipeline. It loads from a JSON or YAML file
// (LoadFile) and binds to command-line flags through the cmdutil
// helpers; explicitly-set flags take precedence over file keys.
type Config struct {
	Source   Source       `json:"source"`
	Exec     Exec         `json:"exec"`
	Analysis Analysis     `json:"analysis"`
	Sinks    Sinks        `json:"sinks"`
	Daemon   DaemonConfig `json:"daemon"`
	Alerts   AlertsConfig `json:"alerts"`
}

// Source names the capture input.
type Source struct {
	// Kind selects the source: pcap, live, or appsim.
	Kind string `json:"kind"`
	// Path is the capture file (pcap kind).
	Path string `json:"path"`
	// Label names the application (or capture) in reports and the
	// trend series. Defaults: the file base name (pcap), "live" (live).
	Label string `json:"label"`
	// Start and End delimit the annotated call window, RFC 3339.
	// Empty defaults the window to the capture span.
	Start string `json:"start"`
	End   string `json:"end"`

	// Listen is the UDP address for the live source (host:port; port 0
	// for ephemeral).
	Listen string `json:"listen"`
	// Idle ends a live read (one Stream call) after this long without
	// frames; the daemon loops, a one-shot collect stops. Zero selects
	// the collector default.
	Idle Duration `json:"idle"`
	// MaxFrames stops a one-shot live collection after this many
	// frames (0 = until idle).
	MaxFrames int `json:"max_frames"`
	// Reorder is the live reorder-buffer depth (0 selects 256).
	Reorder int `json:"reorder"`

	// App, Network, Seed, CallDuration, and Rate parameterize the
	// appsim source.
	App          string   `json:"app"`
	Network      string   `json:"network"`
	Seed         uint64   `json:"seed"`
	CallDuration Duration `json:"call_duration"`
	Rate         int      `json:"rate"`
}

// Exec names the execution mode and its knobs.
type Exec struct {
	// Workers bounds the stream-finalization worker pool (0 = one per
	// CPU, 1 = serial).
	Workers int `json:"workers"`
	// Shards selects the sharded ingest tier when > 1; output is
	// byte-identical to serial for any value.
	Shards int `json:"shards"`
	// Policy is the shard back-pressure policy: "block" (lossless,
	// default) or "drop" (live shedding, every shed datagram counted).
	Policy string `json:"policy"`
	// QueueDepth and BatchSize tune the shard queues (0 = defaults).
	QueueDepth int `json:"queue_depth"`
	BatchSize  int `json:"batch_size"`
	// EvictIdle finalizes streams idle this long to bound memory
	// (0 = off).
	EvictIdle Duration `json:"evict_idle"`
}

// Analysis names the engine knobs.
type Analysis struct {
	// MaxOffset is the DPI's k parameter (0 selects the paper's 200).
	MaxOffset int `json:"max_offset"`
	// Findings enables the behavioural-findings detectors. Nil (key
	// absent) means true, matching every binary's default.
	Findings *bool `json:"findings"`
	// KeepPayloads retains per-packet payload records (required by
	// header inference).
	KeepPayloads bool `json:"keep_payloads"`
	// QoE enables the header-free QoE estimator (internal/qoe):
	// per-stream frame rate, bitrate, inter-frame gap jitter, and
	// stall heuristics attached to results and trend points. Off by
	// default (zero hot-path cost, like metrics).
	QoE bool `json:"qoe"`
}

// FindingsOn reports the effective findings setting.
func (a Analysis) FindingsOn() bool { return a.Findings == nil || *a.Findings }

// Sinks names the outputs.
type Sinks struct {
	// Report selects the per-capture report rendering: "text"
	// (default), "json", or "none".
	Report string `json:"report"`
	// TraceOut exports the decision trace as JSONL to this file.
	// Mutually exclusive with Exec.Shards > 1 (validated).
	TraceOut string `json:"trace_out"`
	// Explain traces the run in memory and renders the decisions
	// matching "<app>/<stream>/<msgtype>". Same shard exclusion.
	Explain string `json:"explain"`
	// MetricsAddr serves /metrics, /debug/vars, and /debug/pprof (and,
	// in daemon mode, /compliance/trend) on this address.
	MetricsAddr string `json:"metrics_addr"`
	// Verdicts streams one JSON object per analyzed capture (or daemon
	// epoch) to this file: per-type message counts and compliance.
	Verdicts string `json:"verdicts"`
}

// DaemonConfig names the always-on service knobs (rtclive daemon).
type DaemonConfig struct {
	// Epoch is the analysis rotation period: each epoch the current
	// session is drained, a trend point is persisted, and a fresh
	// session starts. Zero selects 60s.
	Epoch Duration `json:"epoch"`
	// TrendFile persists the compliance time series (JSONL). Empty
	// keeps the trend in memory only.
	TrendFile string `json:"trend_file"`
	// TrendKeep bounds the in-memory trend ring (0 selects the trend
	// package default).
	TrendKeep int `json:"trend_keep"`
}

// epoch returns the effective rotation period.
func (d DaemonConfig) epoch() time.Duration {
	if d.Epoch > 0 {
		return d.Epoch.Std()
	}
	return 60 * time.Second
}

// AlertsConfig declares the daemon's alert rules and delivery sinks.
// Rules are a mapping keyed by rule name (the config YAML subset has
// no sequences), evaluated against every persisted trend point.
type AlertsConfig struct {
	// Rules maps rule name -> rule; see alert.Rule for the per-rule
	// schema (type, app, drop, min, max, field, for_points,
	// clear_points).
	Rules map[string]alert.Rule `json:"rules"`
	// Sinks selects where fired/resolved alerts are delivered. The log
	// sink (the daemon's stdout) is always on when any rule is
	// configured.
	Sinks AlertSinks `json:"sinks"`
	// Retries is how many re-attempts follow a failed delivery per
	// sink; Backoff sleeps between attempts (0 = none).
	Retries int      `json:"retries"`
	Backoff Duration `json:"backoff"`
}

// AlertSinks names the delivery destinations.
type AlertSinks struct {
	// Webhook POSTs each event as JSON to this URL when non-empty.
	Webhook AlertWebhook `json:"webhook"`
	// Exec runs a shell command per event when non-empty (event JSON on
	// stdin, ALERT_* variables in the environment).
	Exec AlertExec `json:"exec"`
}

// AlertWebhook configures the webhook sink.
type AlertWebhook struct {
	URL     string   `json:"url"`
	Timeout Duration `json:"timeout"`
}

// AlertExec configures the exec sink.
type AlertExec struct {
	Command string   `json:"command"`
	Timeout Duration `json:"timeout"`
}

// RuleList returns the configured rules with Name filled from the map
// key, sorted by name — the deterministic set handed to alert.NewEngine.
func (a AlertsConfig) RuleList() []alert.Rule {
	names := make([]string, 0, len(a.Rules))
	for name := range a.Rules {
		names = append(names, name)
	}
	sort.Strings(names)
	rules := make([]alert.Rule, 0, len(names))
	for _, name := range names {
		r := a.Rules[name]
		r.Name = name
		rules = append(rules, r)
	}
	return rules
}

// BuildSinks assembles the configured sink set (log always included),
// with out receiving log-sink lines.
func (a AlertsConfig) BuildSinks(out io.Writer) []alert.Sink {
	sinks := []alert.Sink{&alert.LogSink{Out: out}}
	if a.Sinks.Webhook.URL != "" {
		sinks = append(sinks, &alert.WebhookSink{URL: a.Sinks.Webhook.URL, Timeout: a.Sinks.Webhook.Timeout.Std()})
	}
	if a.Sinks.Exec.Command != "" {
		sinks = append(sinks, &alert.ExecSink{Command: a.Sinks.Exec.Command, Timeout: a.Sinks.Exec.Timeout.Std()})
	}
	return sinks
}

// Window parses the configured call window.
func (s Source) Window() (start, end time.Time, err error) {
	if s.Start != "" {
		start, err = time.Parse(time.RFC3339, s.Start)
		if err != nil {
			return start, end, fmt.Errorf("pipeline: bad source.start: %w", err)
		}
	}
	if s.End != "" {
		end, err = time.Parse(time.RFC3339, s.End)
		if err != nil {
			return start, end, fmt.Errorf("pipeline: bad source.end: %w", err)
		}
	}
	return start, end, nil
}

// EffectiveLabel resolves the report label for the source.
func (s Source) EffectiveLabel() string {
	if s.Label != "" {
		return s.Label
	}
	switch s.Kind {
	case SourceLive:
		return "live"
	case SourceAppsim:
		if s.App != "" {
			return s.App
		}
	case SourcePCAP:
		if s.Path != "" {
			return filepath.Base(s.Path)
		}
	}
	return ""
}

// Validate checks the configuration's internal consistency and returns
// the first problem as an actionable error. Every front-end validates
// before building a Runner, so the trace/shards exclusion (and every
// other rule) is enforced uniformly instead of per-binary.
func (c *Config) Validate() error {
	switch c.Source.Kind {
	case SourcePCAP:
		if c.Source.Path == "" {
			return fmt.Errorf("pipeline: source.kind %q requires source.path", c.Source.Kind)
		}
	case SourceLive:
		if c.Source.Listen == "" {
			return fmt.Errorf("pipeline: source.kind %q requires source.listen", c.Source.Kind)
		}
	case SourceAppsim:
		if _, err := ParseApp(c.Source.App); err != nil {
			return fmt.Errorf("pipeline: source.app: %w", err)
		}
		if _, err := ParseNetwork(c.Source.Network); err != nil {
			return fmt.Errorf("pipeline: source.network: %w", err)
		}
	case "":
		return fmt.Errorf("pipeline: source.kind is required (pcap, live, or appsim)")
	default:
		return fmt.Errorf("pipeline: unknown source.kind %q (pcap, live, or appsim)", c.Source.Kind)
	}
	if _, _, err := c.Source.Window(); err != nil {
		return err
	}
	if c.Exec.Workers < 0 || c.Exec.Shards < 0 {
		return fmt.Errorf("pipeline: exec.workers and exec.shards must be non-negative")
	}
	if _, err := c.Exec.policy(); err != nil {
		return err
	}
	if c.Exec.Shards > 1 {
		// The shard workers would interleave one trace sink
		// nondeterministically; sharded runs are untraced by design.
		if c.Sinks.TraceOut != "" {
			return fmt.Errorf("pipeline: sinks.trace_out cannot be combined with exec.shards > 1 (shard workers would interleave one trace sink nondeterministically); set exec.shards to 1 to trace")
		}
		if c.Sinks.Explain != "" {
			return fmt.Errorf("pipeline: sinks.explain cannot be combined with exec.shards > 1 (shard workers would interleave one trace sink nondeterministically); set exec.shards to 1 to explain")
		}
	}
	switch c.Sinks.Report {
	case "", "text", "json", "none":
	default:
		return fmt.Errorf("pipeline: unknown sinks.report %q (text, json, or none)", c.Sinks.Report)
	}
	if c.Analysis.KeepPayloads && c.Exec.EvictIdle > 0 {
		return fmt.Errorf("pipeline: analysis.keep_payloads is incompatible with exec.evict_idle (evicted payloads cannot be retained)")
	}
	for _, r := range c.Alerts.RuleList() {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("pipeline: alerts.rules.%s: %w", r.Name, err)
		}
		if r.Type == alert.TypeQoEFloor && !c.Analysis.QoE {
			return fmt.Errorf("pipeline: alerts.rules.%s: qoe_floor rules need analysis.qoe: true (trend points carry no QoE fields otherwise)", r.Name)
		}
	}
	if c.Alerts.Retries < 0 {
		return fmt.Errorf("pipeline: alerts.retries must be non-negative")
	}
	if c.Alerts.Backoff < 0 {
		return fmt.Errorf("pipeline: alerts.backoff must be non-negative")
	}
	return nil
}

// ParseApp resolves an application name case-insensitively, tolerating
// removed spaces ("googlemeet").
func ParseApp(s string) (appsim.App, error) {
	for _, a := range appsim.Apps {
		if strings.EqualFold(string(a), s) || strings.EqualFold(strings.ReplaceAll(string(a), " ", ""), s) {
			return a, nil
		}
	}
	return "", fmt.Errorf("unknown app %q", s)
}

// ParseNetwork resolves a network-configuration name.
func ParseNetwork(s string) (appsim.Network, error) {
	switch strings.ToLower(s) {
	case "wifi-p2p", "wifip2p":
		return appsim.WiFiP2P, nil
	case "wifi-relay", "wifirelay":
		return appsim.WiFiRelay, nil
	case "cellular", "cell":
		return appsim.Cellular, nil
	}
	return 0, fmt.Errorf("unknown network %q (wifi-p2p, wifi-relay, cellular)", s)
}

// LoadFile reads a config file over cfg: keys present in the file
// override the corresponding fields, keys absent leave them — which is
// what gives flag-bound defaults file-then-flag precedence. The format
// is JSON or a YAML subset (mappings, scalars, comments; see
// parseYAML), chosen by extension (.json is JSON, everything else
// YAML). Unknown keys are rejected.
func LoadFile(cfg *Config, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return strictDecode(cfg, data, path)
	}
	doc, err := parseYAML(data)
	if err != nil {
		return fmt.Errorf("pipeline: %s: %w", path, err)
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("pipeline: %s: %w", path, err)
	}
	return strictDecode(cfg, buf, path)
}

// strictDecode unmarshals JSON into cfg, rejecting unknown keys at any
// nesting level.
func strictDecode(cfg *Config, data []byte, path string) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("pipeline: %s: %w", path, err)
	}
	return nil
}
