package natsim

import (
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
)

// Datagram is one packet as observed on a device interface: the wire
// unit the app simulators emit and the impairment stage permutes. It
// lives here (rather than in internal/appsim, which re-exports it as
// appsim.Dgram) so the network-impairment layer can transform traffic
// without depending on the application emulators above it.
type Datagram struct {
	At  time.Time
	Src netip.AddrPort
	Dst netip.AddrPort
	// Proto is UDP or TCP.
	Proto layers.IPProtocol
	// Payload is the transport payload.
	Payload []byte
	// TCPFlags is used for TCP segments.
	TCPFlags uint8
}
