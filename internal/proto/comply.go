package proto

import (
	"fmt"
	"time"
)

// Criterion numbers the five compliance checks of the paper's model
// (§4.2). Evaluation is strictly sequential: the first failed criterion
// classifies the message and later criteria are not evaluated.
type Criterion int

// The five criteria, in evaluation order.
const (
	CritNone        Criterion = 0 // compliant
	CritMessageType Criterion = 1
	CritHeader      Criterion = 2
	CritAttrType    Criterion = 3
	CritAttrValue   Criterion = 4
	CritSemantics   Criterion = 5
)

func (c Criterion) String() string {
	switch c {
	case CritNone:
		return "compliant"
	case CritMessageType:
		return "message type definition"
	case CritHeader:
		return "header field validity"
	case CritAttrType:
		return "attribute type validity"
	case CritAttrValue:
		return "attribute value validity"
	case CritSemantics:
		return "syntax and semantic integrity"
	}
	return fmt.Sprintf("criterion %d", int(c))
}

// Verdict is the compliance outcome for one message.
type Verdict struct {
	Compliant bool
	// Failed identifies the first criterion violated (CritNone when
	// compliant).
	Failed Criterion
	// Reason is a human-readable explanation of the violation.
	Reason string
}

// Ok returns a compliant verdict.
func Ok() Verdict { return Verdict{Compliant: true} }

// Fail returns a verdict failing the given criterion.
func Fail(c Criterion, format string, args ...any) Verdict {
	return Verdict{Failed: c, Reason: fmt.Sprintf(format, args...)}
}

// TypeKey identifies a message type for the message-type-based metric:
// the protocol family plus the label the paper's tables use (hex STUN
// type, RTP payload type number, RTCP packet type number, QUIC header
// kind, DTLS record kind, or "ChannelData").
type TypeKey struct {
	Protocol ID
	Label    string
}

func (k TypeKey) String() string { return k.Protocol.String() + " " + k.Label }

// Checked pairs one message with its verdict.
type Checked struct {
	Protocol ID
	Type     TypeKey
	Verdict  Verdict
	// Bytes is the message's encoded size, for volume accounting.
	Bytes int
	// Timestamp is the datagram capture time.
	Timestamp time.Time
}

// Checker holds call-scoped compliance state shared across all streams
// of one analyzed capture. Protocol drivers keep their capture-scoped
// state (the RTP driver's observed-SSRC set) in per-ID slots.
type Checker struct {
	// Record, when non-nil, observes the verdicts of every Check call
	// (the compliance package hangs its metrics counters here).
	Record func([]Checked)

	reg   *Registry
	slots [MaxIDs]any
}

// NewChecker returns a checker judging against the given registry (nil
// selects the default registry).
func NewChecker(reg *Registry) *Checker {
	if reg == nil {
		reg = Default()
	}
	return &Checker{reg: reg}
}

// Registry returns the registry the checker judges against.
func (c *Checker) Registry() *Registry { return c.reg }

// Slot returns a protocol's private capture-scoped state.
func (c *Checker) Slot(id ID) any { return c.slots[id] }

// SetSlot stores a protocol's private capture-scoped state.
func (c *Checker) SetSlot(id ID, v any) { c.slots[id] = v }

// Session holds per-stream state for criterion 5. Create one per
// transport stream and feed it messages in capture order. Protocol
// drivers keep their stream-scoped semantic state (STUN transaction
// tracking, SRTCP index monotonicity, QUIC connection IDs, DTLS
// handshake progress) in per-ID slots.
type Session struct {
	// Trace, when non-nil, observes every Check call with the judged
	// message and its verdicts — the per-stream reason-reporting hook
	// the decision-trace layer (internal/obs) attaches so failing
	// criteria can be replayed with the offending bytes. Unlike
	// Checker.Record (capture-scoped metrics), Trace is stream-scoped.
	Trace func(m Message, ts time.Time, out []Checked)

	checker *Checker
	slots   [MaxIDs]any
	// scratch is the reused Check output buffer; see Check.
	scratch []Checked
}

// NewSession returns a per-stream session.
func (c *Checker) NewSession() *Session { return &Session{checker: c} }

// Checker returns the capture-scoped checker the session belongs to.
func (s *Session) Checker() *Checker { return s.checker }

// Slot returns a protocol's private per-stream state.
func (s *Session) Slot(id ID) any { return s.slots[id] }

// SetSlot stores a protocol's private per-stream state.
func (s *Session) SetSlot(id ID, v any) { s.slots[id] = v }

// Check evaluates one extracted message by dispatching to the
// registered handler, returning one Checked per protocol data unit.
// Messages of unregistered protocols yield nil.
//
// The returned slice is a per-session scratch buffer, valid only until
// the next Check on the same session; callers (and the Record/Trace
// hooks) must copy any Checked values they retain. Sessions are
// per-stream and single-writer, so this is safe by the pipeline's
// ownership discipline (DESIGN.md §14).
func (s *Session) Check(m Message, ts time.Time) []Checked {
	h := s.checker.reg.Handler(m.Protocol)
	if h == nil {
		return nil
	}
	out := h.Comply(s.scratch[:0], m, ts, s)
	s.scratch = out
	if s.checker.Record != nil {
		s.checker.Record(out)
	}
	if s.Trace != nil {
		s.Trace(m, ts, out)
	}
	return out
}
