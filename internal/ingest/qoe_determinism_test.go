package ingest_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"github.com/rtc-compliance/rtcc/internal/appsim"
	"github.com/rtc-compliance/rtcc/internal/core"
	"github.com/rtc-compliance/rtcc/internal/ingest"
	"github.com/rtc-compliance/rtcc/internal/qoe"
)

// QoE determinism differential: the header-free QoE features attached
// to a capture analysis must be byte-identical — not just numerically
// close — across the serial, worker-parallel, and sharded pipelines.
// Features are pure functions of each stream's (timestamp, size)
// sequence in capture order, and the capture-level fold runs in the
// deterministic RTC stream order every pipeline shares, so the JSON
// encodings must match exactly.

// qoeJSON renders the QoE result canonically for byte comparison.
func qoeJSON(t *testing.T, ca *core.CaptureAnalysis) []byte {
	t.Helper()
	b, err := json.Marshal(ca.QoE)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestQoEDeterminismAcrossPipelines(t *testing.T) {
	seeds := invarianceSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	qcfg := &qoe.Config{}
	for _, app := range appsim.Apps {
		for _, seed := range seeds {
			cap := genCapture(t, app, appsim.WiFiP2P, seed)
			in := cap.Input()
			serial, err := core.AnalyzeCapture(in, core.Options{Workers: 1, QoE: qcfg})
			if err != nil {
				t.Fatalf("%s seed %d serial: %v", app, seed, err)
			}
			if serial.QoE == nil || len(serial.QoE.Streams) == 0 {
				t.Fatalf("%s seed %d: QoE enabled but no stream features", app, seed)
			}
			ref := qoeJSON(t, serial)

			workers, err := core.AnalyzeCapture(in, core.Options{Workers: 4, QoE: qcfg})
			if err != nil {
				t.Fatalf("%s seed %d workers: %v", app, seed, err)
			}
			if got := qoeJSON(t, workers); string(got) != string(ref) {
				t.Errorf("%s seed %d: worker-parallel QoE differs\nserial:  %s\nworkers: %s", app, seed, ref, got)
			}

			for _, n := range []int{2, 4} {
				sharded, err := ingest.AnalyzeCapture(in, core.Options{Workers: 1, QoE: qcfg}, ingest.Config{Shards: n})
				if err != nil {
					t.Fatalf("%s seed %d shards=%d: %v", app, seed, n, err)
				}
				if got := qoeJSON(t, sharded); string(got) != string(ref) {
					t.Errorf("%s seed %d: %d-shard QoE differs\nserial:  %s\nsharded: %s", app, seed, n, ref, got)
				}
				requireIdentical(t, fmt.Sprintf("%s seed %d shards %d (qoe on)", app, seed, n), serial, sharded)
			}
		}
	}
}

// TestQoEOffLeavesResultNil pins the nil-estimator contract: without
// Options.QoE the analysis carries no QoE field anywhere, and enabling
// it changes nothing else in the result.
func TestQoEOffLeavesResultNil(t *testing.T) {
	cap := genCapture(t, appsim.Zoom, appsim.WiFiP2P, 7)
	in := cap.Input()
	off, err := core.AnalyzeCapture(in, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.QoE != nil {
		t.Fatal("QoE populated without Options.QoE")
	}
	on, err := core.AnalyzeCapture(in, core.Options{Workers: 1, QoE: &qoe.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if on.QoE == nil {
		t.Fatal("QoE missing with Options.QoE set")
	}
	onStripped := *on
	onStripped.QoE = nil
	if !reflect.DeepEqual(off, &onStripped) {
		t.Fatal("enabling QoE changed the analysis beyond the QoE field")
	}
}
