package alert

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

var testEvent = Event{
	Kind: "fire", Rule: "r", Type: TypeComplianceDrop, App: "Discord",
	Time: base, Value: 0.2,
	Message: "alert r firing: app=Discord type-compliance rate=0.200",
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	s := LogSink{Out: &buf}
	if s.Name() != "log" {
		t.Fatalf("name = %q", s.Name())
	}
	if err := s.Deliver(testEvent); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "daemon: "+testEvent.Message+"\n" {
		t.Fatalf("log line = %q", got)
	}
}

func TestWebhookSink(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got.Store(string(r.Header.Get("Content-Type")) + "|" + string(body))
	}))
	defer srv.Close()
	s := WebhookSink{URL: srv.URL}
	if s.Name() != "webhook" {
		t.Fatalf("name = %q", s.Name())
	}
	if err := s.Deliver(testEvent); err != nil {
		t.Fatal(err)
	}
	parts := strings.SplitN(got.Load().(string), "|", 2)
	if !strings.HasPrefix(parts[0], "application/json") {
		t.Fatalf("content type = %q", parts[0])
	}
	var ev Event
	if err := json.Unmarshal([]byte(parts[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Rule != "r" || ev.Kind != "fire" || ev.App != "Discord" {
		t.Fatalf("decoded event = %+v", ev)
	}
}

func TestWebhookSinkNon2xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()
	s := &WebhookSink{URL: srv.URL}
	if err := s.Deliver(testEvent); err == nil {
		t.Fatal("expected error on 502")
	}
}

func TestExecSink(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "alerts.log")
	s := ExecSink{Command: `printf '%s %s %s\n' "$ALERT_KIND" "$ALERT_RULE" "$ALERT_APP" >> ` + out + `; cat > ` + filepath.Join(dir, "stdin.json")}
	if s.Name() != "exec" {
		t.Fatalf("name = %q", s.Name())
	}
	if err := s.Deliver(testEvent); err != nil {
		t.Fatal(err)
	}
	line, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(line) != "fire r Discord\n" {
		t.Fatalf("exec output = %q", line)
	}
	var ev Event
	raw, err := os.ReadFile(filepath.Join(dir, "stdin.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Value != 0.2 {
		t.Fatalf("stdin event = %+v", ev)
	}
}

func TestExecSinkFailureIncludesOutput(t *testing.T) {
	s := &ExecSink{Command: "echo boom >&2; exit 3"}
	err := s.Deliver(testEvent)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

// flakySink fails the first n deliveries, then succeeds.
type flakySink struct {
	fail  int
	calls int
}

func (s *flakySink) Name() string { return "flaky" }
func (s *flakySink) Deliver(Event) error {
	s.calls++
	if s.calls <= s.fail {
		return io.ErrUnexpectedEOF
	}
	return nil
}

func TestDispatcherRetries(t *testing.T) {
	reg := metrics.NewRegistry()
	var log bytes.Buffer
	flaky := &flakySink{fail: 2}
	d := NewDispatcher([]Sink{flaky}, 2, time.Millisecond, &log, reg)
	d.Dispatch(testEvent)
	if flaky.calls != 3 {
		t.Fatalf("calls = %d, want 3", flaky.calls)
	}
	snap := reg.Snapshot()
	if snap.Counters[`alerts_delivery_ok_total{sink=flaky}`] != 1 {
		t.Fatalf("ok counter: %v", snap.Counters)
	}
	if snap.Counters[`alerts_delivery_retries_total{sink=flaky}`] != 2 {
		t.Fatalf("retries counter: %v", snap.Counters)
	}
	if log.Len() != 0 {
		t.Fatalf("unexpected log output: %q", log.String())
	}
}

func TestDispatcherFailureIsContained(t *testing.T) {
	reg := metrics.NewRegistry()
	var log bytes.Buffer
	dead := &flakySink{fail: 100}
	ok := &flakySink{}
	d := NewDispatcher([]Sink{dead, ok}, 1, 0, &log, reg)
	d.Dispatch(testEvent) // must not panic or abort the second sink
	if dead.calls != 2 {
		t.Fatalf("dead sink calls = %d, want 2", dead.calls)
	}
	if ok.calls != 1 {
		t.Fatalf("healthy sink calls = %d, want 1", ok.calls)
	}
	snap := reg.Snapshot()
	if snap.Counters[`alerts_delivery_failed_total{sink=flaky}`] != 1 {
		t.Fatalf("failed counter: %v", snap.Counters)
	}
	if !strings.Contains(log.String(), "alert delivery to flaky failed after 2 attempts") {
		t.Fatalf("log = %q", log.String())
	}
}

func TestDispatcherNilRegistry(t *testing.T) {
	d := NewDispatcher([]Sink{&flakySink{}}, 0, 0, io.Discard, nil)
	d.Dispatch(testEvent) // must not panic without metrics
}
