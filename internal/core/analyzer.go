package core

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"github.com/rtc-compliance/rtcc/internal/bufpool"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/filterpipe"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/obs"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/report"
	"github.com/rtc-compliance/rtcc/internal/tlsinspect"
)

// AnalyzerConfig parameterizes one streaming analysis.
type AnalyzerConfig struct {
	// Label names the application (or capture) in reports.
	Label string
	// LinkType describes the fed frames.
	LinkType pcap.LinkType
	// CallStart and CallEnd delimit the annotated call window.
	CallStart, CallEnd time.Time
	// DefaultWindowToSpan defaults the call window, when CallStart is
	// zero, to the span of the fed timestamps at Close — the AnalyzePCAP
	// convention for unannotated captures. Until Close the window is
	// then unknown, so only window-independent filter rules run online.
	DefaultWindowToSpan bool
	// KeepPayloads retains every per-packet record, making Close's
	// result bit-identical to the historical batch output including the
	// buffered stream payloads (which rtcc.Analyze callers may consume).
	// Without it, payload records are kept only for provisionally-RTC
	// UDP streams until their DPI finalization and dropped afterwards.
	KeepPayloads bool
	// FramesStable promises that fed frame buffers stay valid and
	// unmodified for the Analyzer's lifetime, letting it reference
	// payload bytes instead of copying them. Readers that reuse their
	// frame buffer must leave it false.
	FramesStable bool
	// EvictIdle, when positive, finalizes the pipeline state of streams
	// idle for longer than this: their buffered payloads are inspected,
	// checked, and released, so resident memory is bounded by the
	// active streams. A stream that wakes up again resumes its
	// per-stream contexts. Eviction trades the strict batch guarantee
	// of one DPI pass over the whole stream for bounded memory: output
	// is still deterministic, and differs from batch only when an RTP
	// SSRC first validates in a later chunk than it was sighted in.
	// Incompatible with KeepPayloads.
	EvictIdle time.Duration
	// Pool, when non-nil, copies kept UDP payloads into per-stream
	// arenas drawn from this pool instead of heap-allocating each copy,
	// and releases a stream's arena when its payloads are dropped (an
	// online filter removal, a chunk finalization, or Close). Together
	// with FeedBatch this makes the steady-state datagram path
	// allocation-free. Ownership rules are in DESIGN.md §14.
	// Incompatible with KeepPayloads (the batch result would retain
	// released buffers); ignored when FramesStable promises stable
	// frames (nothing is copied then).
	Pool *bufpool.Pool
	// ExternalSeq makes FeedBatch take each datagram's arrival index
	// from its Seq field instead of the Analyzer's own feed counter.
	// The sharded ingest router (internal/ingest) stamps a
	// capture-global sequence on every datagram before fanning out, so
	// each shard records where its streams sit in the global arrival
	// order and MergeAnalyzers can rebuild the serial stream-table
	// order exactly. Feed is a misuse error under ExternalSeq: it
	// carries no Seq to consume.
	ExternalSeq bool
}

// streamState is the Analyzer's per-stream pipeline state beyond what
// flow.Stream summarizes.
type streamState struct {
	s *flow.Stream
	// removed marks a provisional filter verdict. Every online rule is
	// monotone — once true it stays true through Close — so a removed
	// stream's payloads are dropped immediately and never inspected.
	removed bool
	// sni is the first TLS ClientHello SNI seen on a TCP stream,
	// extracted at feed time so Close never needs TCP payloads.
	sni   string
	sniOK bool
	// insp is the incremental DPI state for provisionally-RTC UDP
	// streams.
	insp *dpi.StreamInspector
	// session and partial carry compliance and findings state across
	// chunked finalizations (eviction mode).
	session *compliance.Session
	partial *streamPartial
	// span is the stream's decision-trace span (nil when tracing is
	// off); it buffers events until the analyzer flushes it at a
	// deterministic point.
	span *obs.Span
	// arena holds the stream's pooled payload copies (pool mode only);
	// released whenever the stream's buffered payloads are dropped.
	arena *bufpool.Arena
	// prev/next link the stream into the analyzer's intrusive recency
	// list (least-recent first); inList marks membership (false while
	// evicted). Embedding the links keeps stream wake-ups
	// allocation-free — container/list would allocate an Element per
	// re-insertion.
	prev, next *streamState
	inList     bool
	// checkSeq is the Analyzer.feedSeq value at the stream's last
	// per-feed maintenance (recency bump, online-filter re-check).
	// Feed bumps feedSeq per packet, FeedBatch per batch, so batching
	// amortizes that maintenance to once per stream per batch — an
	// output-neutral change, because every online filter rule is
	// monotone and eviction/removal timing only moves chunk
	// boundaries.
	checkSeq uint64
	// birth is the arrival index of the datagram that created this
	// stream. Under ExternalSeq it is capture-global, which is what
	// lets MergeAnalyzers sort shard streams back into the exact
	// insertion order a serial analyzer's table would hold.
	birth uint64
}

// Analyzer is the incremental analysis pipeline: Feed advances packet
// decoding, flow grouping, online filtering, and DPI per frame; Close
// reconciles the online filter verdicts against the full two-stage
// filter and assembles the CaptureAnalysis. With KeepPayloads (and no
// eviction) the result is byte-identical to the batch pipeline; the
// offline entry points are thin wrappers over this type.
type Analyzer struct {
	cfg  AnalyzerConfig
	opts Options

	table  *flow.Table
	states map[flow.Key]*streamState
	// recHead..recTail is the intrusive recency list ordering live
	// (non-evicted) streams by last activity, least-recent first.
	recHead, recTail *streamState
	engine           *dpi.Engine

	// lastKey/lastSt memoize the most recently fed stream: RTC traffic
	// arrives in per-stream bursts, so consecutive datagrams usually hit
	// the same stream and skip both map lookups.
	lastKey flow.Key
	lastSt  *streamState
	// feedSeq numbers feed calls (one Feed or one FeedBatch each); see
	// streamState.checkSeq.
	feedSeq uint64

	frames     int
	decodeErrs int
	// firstTS and lastTS are the first and last fed timestamps
	// (positional, matching the batch window-defaulting convention).
	firstTS, lastTS time.Time
	// arrival numbers fed frames 1..n (or mirrors Datagram.Seq under
	// ExternalSeq); firstSeq/lastSeq are the arrival indices behind
	// firstTS/lastTS, which is how MergeAnalyzers picks the globally
	// first and last timestamps across shards.
	arrival           uint64
	firstSeq, lastSeq uint64

	// windowKnown is false only while DefaultWindowToSpan defers the
	// window to Close.
	windowKnown      bool
	winStart, winEnd time.Time
	blocklist        []string
	// preCallPairs accumulates address pairs active before CallStart,
	// the stage-2 local-IP rule's evidence.
	preCallPairs map[[2]netip.Addr]bool

	active, peak int
	closed       bool

	// pkt is decode scratch: Feed is single-goroutine, so one reusable
	// Packet removes the per-frame layer allocations.
	pkt layers.Packet

	// trace is the capture's decision-trace context (nil when
	// Options.Tracer is nil). All emission happens from Feed or the
	// deterministic parts of Close, never from worker goroutines.
	trace *obs.Pipeline

	cm captureMetrics
	am analyzerMetrics
}

// NewAnalyzer validates the configuration and returns an empty
// Analyzer.
func NewAnalyzer(cfg AnalyzerConfig, opts Options) (*Analyzer, error) {
	if cfg.CallEnd.Before(cfg.CallStart) {
		return nil, errors.New("core: call window end precedes start")
	}
	if cfg.EvictIdle > 0 && cfg.KeepPayloads {
		return nil, errors.New("core: KeepPayloads is incompatible with EvictIdle")
	}
	if cfg.Pool != nil && cfg.KeepPayloads {
		return nil, errors.New("core: KeepPayloads is incompatible with Pool (the batch result would retain released buffers)")
	}
	fcfg := filterpipe.Config{WindowSlack: opts.WindowSlack, SNIBlocklist: opts.SNIBlocklist}
	a := &Analyzer{
		cfg:          cfg,
		opts:         opts,
		table:        flow.NewTable(),
		states:       make(map[flow.Key]*streamState),
		engine:       opts.engine(),
		blocklist:    fcfg.Blocklist(),
		preCallPairs: make(map[[2]netip.Addr]bool),
		trace:        obs.New(opts.Tracer, cfg.Label, opts.TraceSampling, opts.Metrics),
		am:           newAnalyzerMetrics(opts.Metrics, cfg.Label),
	}
	a.windowKnown = !(cfg.DefaultWindowToSpan && cfg.CallStart.IsZero())
	if a.windowKnown {
		slack := fcfg.Slack()
		a.winStart = cfg.CallStart.Add(-slack)
		a.winEnd = cfg.CallEnd.Add(slack)
	}
	return a, nil
}

// Feed advances the pipeline by one captured frame. Decode failures are
// tolerated and counted, exactly as in the batch path; the returned
// error is reserved for misuse (feeding a closed Analyzer).
func (a *Analyzer) Feed(ts time.Time, frame []byte) error {
	if a.closed {
		return errors.New("core: Feed after Close")
	}
	if a.cfg.ExternalSeq {
		return errors.New("core: Feed requires FeedBatch under ExternalSeq (no Seq to consume)")
	}
	start := a.am.feedSeconds.Start()
	defer a.am.feedSeconds.ObserveSince(start)
	a.feedSeq++
	a.arrival++
	a.feedOne(ts, frame, a.arrival)
	if a.cfg.EvictIdle > 0 {
		a.evictIdle(ts)
	}
	return nil
}

// Datagram is one captured frame with its timestamp, the unit of
// FeedBatch.
type Datagram struct {
	Timestamp time.Time
	Frame     []byte
	// Seq is the datagram's capture-global arrival index, consumed
	// only by analyzers configured with ExternalSeq (the sharded
	// ingest router stamps it before fanning out). Plain FeedBatch
	// callers leave it zero; it is ignored then.
	Seq uint64
}

// FeedBatch advances the pipeline over a slice of frames, amortizing
// the per-packet overhead Feed cannot avoid (the feed-latency probe
// and the per-call bookkeeping) and giving the same-stream fast path
// its best hit rate. Output is identical to feeding the datagrams one
// at a time — batching changes scheduling, never results.
//
// Unless FramesStable is set, every frame is copied out (to the pool's
// arenas in pool mode) before FeedBatch returns, so the caller may
// reuse the frame buffers — but not before the call returns, which is
// what lets readers batch frames in a reused ring.
func (a *Analyzer) FeedBatch(batch []Datagram) error {
	if a.closed {
		return errors.New("core: Feed after Close")
	}
	if len(batch) == 0 {
		return nil
	}
	start := a.am.feedSeconds.Start()
	a.feedSeq++
	for i := range batch {
		seq := batch[i].Seq
		if !a.cfg.ExternalSeq {
			a.arrival++
			seq = a.arrival
		}
		a.feedOne(batch[i].Timestamp, batch[i].Frame, seq)
	}
	if a.cfg.EvictIdle > 0 {
		a.evictIdle(batch[len(batch)-1].Timestamp)
	}
	a.am.feedSeconds.ObserveSince(start)
	a.am.feedBatches.Inc()
	return nil
}

// feedOne is the shared per-frame pipeline step behind Feed and
// FeedBatch: decode, flow grouping, online filtering, and DPI pass 1.
func (a *Analyzer) feedOne(ts time.Time, frame []byte, seq uint64) {
	if a.frames == 0 {
		a.firstTS = ts
		a.firstSeq = seq
	}
	a.frames++
	a.lastTS = ts
	a.lastSeq = seq

	pkt := &a.pkt
	if err := layers.DecodeInto(pkt, a.cfg.LinkType, frame); err != nil {
		a.decodeErrs++
		return
	}
	proto, srcPort, dstPort := pkt.Transport()
	if proto == 0 {
		return
	}
	src := flow.Endpoint{Addr: pkt.Src(), Port: srcPort}
	dst := flow.Endpoint{Addr: pkt.Dst(), Port: dstPort}
	key := flow.KeyFor(proto, src, dst)
	var st *streamState
	if a.lastSt != nil && key == a.lastKey {
		st = a.lastSt
	} else {
		st = a.states[key]
	}
	isNew := st == nil

	// Retention: batch compatibility keeps everything; otherwise only
	// provisionally-RTC UDP streams need their records (payload for
	// DPI, timestamp for compliance, direction for findings).
	keep := a.cfg.KeepPayloads || (proto == layers.IPProtocolUDP && (isNew || !st.removed))
	if keep && !a.cfg.FramesStable {
		if a.cfg.Pool != nil {
			// Pool mode: the copy lands in the stream's arena, which
			// requires the state up front (flow.AddPacket cannot fail
			// past the proto check above, so pre-creating is safe).
			if isNew {
				st = &streamState{birth: seq}
				a.states[key] = st
			}
			if st.arena == nil {
				st.arena = a.cfg.Pool.NewArena()
			}
			pkt.Payload = st.arena.Append(pkt.Payload)
		} else {
			// make+copy (not append to nil) so a zero-length payload
			// stays a non-nil empty slice, exactly as the batch decoder
			// leaves it.
			cp := make([]byte, len(pkt.Payload))
			copy(cp, pkt.Payload)
			pkt.Payload = cp
		}
	}
	var s *flow.Stream
	if st != nil && st.s != nil {
		// Known stream: append directly, skipping the key
		// re-canonicalization and stream-map lookup.
		s = st.s
		dir := flow.DirAToB
		if key.A != src {
			dir = flow.DirBToA
		}
		var flags uint8
		if pkt.TCP != nil {
			flags = pkt.TCP.Flags
		}
		a.table.AddToStream(s, ts, dir, src, dst, pkt.Payload, flags, keep)
	} else {
		var ok bool
		s, ok = a.table.AddPacket(ts, pkt, keep)
		if !ok {
			return
		}
	}
	if st == nil {
		st = &streamState{s: s, birth: seq}
		a.states[key] = st
	} else if st.s == nil {
		st.s = s
	}
	a.lastKey, a.lastSt = key, st

	if a.windowKnown && ts.Before(a.cfg.CallStart) {
		a.preCallPairs[filterpipe.PairKey(key.A.Addr, key.B.Addr)] = true
	}
	if proto == layers.IPProtocolTCP && !st.sniOK && len(pkt.Payload) > 0 {
		if sni, err := tlsinspect.SNI(pkt.Payload); err == nil {
			st.sni, st.sniOK = sni, true
		}
	}

	// Per-feed maintenance, once per stream per Feed/FeedBatch call:
	// recency ordering and the online-filter re-check. Both are
	// output-neutral at any granularity (filter rules are monotone,
	// removal and eviction timing only move chunk boundaries), so a
	// batch pays them once per touched stream instead of per packet.
	if st.checkSeq != a.feedSeq {
		st.checkSeq = a.feedSeq
		if st.inList {
			a.recencyMoveToBack(st)
		} else {
			// A new stream, or an evicted one waking up: it (re)joins
			// the live set and its next finalization continues the
			// persisted contexts.
			a.recencyPushBack(st)
			a.streamLive(+1)
		}
		if !st.removed && a.removableNow(s, st) {
			st.removed = true
			if !a.cfg.KeepPayloads {
				s.Packets = nil
			}
			st.insp = nil
			if st.arena != nil {
				// The records and inspector buffer are gone; the copies
				// are dead, so the chunks go back to the pool.
				st.arena.Release()
				st.arena = nil
			}
		}
	}
	if proto == layers.IPProtocolUDP && !st.removed {
		if st.insp == nil {
			st.insp = a.engine.NewStreamInspector()
			if a.trace != nil {
				st.span = a.trace.StreamSpan(key.String())
				st.insp.SetSpan(st.span)
			}
		}
		st.insp.Feed(pkt.Payload)
	}
}

// recencyPushBack appends st at the most-recent end.
func (a *Analyzer) recencyPushBack(st *streamState) {
	st.prev = a.recTail
	st.next = nil
	if a.recTail != nil {
		a.recTail.next = st
	} else {
		a.recHead = st
	}
	a.recTail = st
	st.inList = true
}

// recencyRemove unlinks st from the recency list.
func (a *Analyzer) recencyRemove(st *streamState) {
	if st.prev != nil {
		st.prev.next = st.next
	} else {
		a.recHead = st.next
	}
	if st.next != nil {
		st.next.prev = st.prev
	} else {
		a.recTail = st.prev
	}
	st.prev, st.next = nil, nil
	st.inList = false
}

// recencyMoveToBack marks st most recent.
func (a *Analyzer) recencyMoveToBack(st *streamState) {
	if a.recTail == st {
		return
	}
	a.recencyRemove(st)
	a.recencyPushBack(st)
}

// streamLive adjusts the live-stream accounting and gauges.
func (a *Analyzer) streamLive(delta int) {
	a.active += delta
	a.am.active.Set(int64(a.active))
	if a.active > a.peak {
		a.peak = a.active
		a.am.activePeak.Set(int64(a.peak))
	}
}

// removableNow evaluates the filter rules that can already be decided
// online. Every rule here is monotone — the evidence (stream span,
// 3-tuple spans, pre-call pairs, a blocklisted SNI, a well-known port)
// only accumulates — so a true verdict is guaranteed to hold at Close,
// which is what makes dropping the stream's payloads safe. The final
// stage/rule attribution is recomputed by the full filter at Close.
func (a *Analyzer) removableNow(s *flow.Stream, st *streamState) bool {
	if filterpipe.NonRTCPorts[s.Key.A.Port] || filterpipe.NonRTCPorts[s.Key.B.Port] {
		return true
	}
	if st.sniOK && filterpipe.MatchesBlocklist(st.sni, a.blocklist) {
		return true
	}
	if !a.windowKnown {
		return false
	}
	if s.FirstSeen.Before(a.winStart) || s.LastSeen.After(a.winEnd) {
		return true
	}
	for _, tt := range s.DstTuples {
		if sp, ok := a.table.ThreeTupleSpan(tt); ok &&
			(sp.First.Before(a.winStart) || sp.Last.After(a.winEnd)) {
			return true
		}
	}
	if filterpipe.IsLocalScope(s.Key.A.Addr) || filterpipe.IsLocalScope(s.Key.B.Addr) {
		if a.preCallPairs[filterpipe.PairKey(s.Key.A.Addr, s.Key.B.Addr)] {
			return true
		}
	}
	return false
}

// evictIdle finalizes and evicts streams idle past the configured
// threshold, walking the recency list from its least-recent end.
func (a *Analyzer) evictIdle(now time.Time) {
	for st := a.recHead; st != nil; {
		if now.Sub(st.s.LastSeen) <= a.cfg.EvictIdle {
			break
		}
		next := st.next
		a.recencyRemove(st)
		if a.trace != nil {
			a.trace.StreamEvicted(st.s.Key.String())
		}
		a.finalizeChunk(st)
		a.streamLive(-1)
		a.am.evicted.Inc()
		st = next
	}
}

// finalizeChunk runs DPI pass 2, compliance, and findings over a
// stream's buffered records and releases them. The per-stream contexts
// persist in the state, so a later chunk continues seamlessly.
func (a *Analyzer) finalizeChunk(st *streamState) {
	s := st.s
	if s.Key.Proto == layers.IPProtocolUDP && !st.removed && st.insp != nil && st.insp.Pending() > 0 {
		if st.partial == nil {
			st.partial = newStreamPartial(st.span, s.Key.String(), a.opts.QoE)
			checker := compliance.NewCheckerWith(a.opts.Registry)
			checker.SetMetrics(a.opts.Metrics)
			st.session = checker.NewSession()
		}
		recs := s.Packets
		results := st.insp.Finalize()
		st.partial.consume(recs, results, st.session, a.opts.SkipFindings)
		// Eviction happens during the single-goroutine Feed, so flushing
		// here is a deterministic export point for the chunk's events.
		st.span.Flush()
	}
	if !a.cfg.KeepPayloads {
		a.dropRecords(s)
	}
	if st.arena != nil {
		// Everything in the chunk has been consumed (verdicts and trace
		// windows copy the bytes they keep); the payload copies go back
		// to the pool. The arena stays usable for a wake-up.
		st.arena.Release()
	}
}

// dropRecords releases a stream's per-packet records. In pool mode the
// record storage is recycled in place (the next chunk reuses the
// array); otherwise it is handed to the GC, matching the historical
// nil convention the KeepPayloads result shape relies on.
func (a *Analyzer) dropRecords(s *flow.Stream) {
	if a.cfg.Pool != nil {
		clear(s.Packets)
		s.Packets = s.Packets[:0]
		return
	}
	s.Packets = nil
}

// Close reconciles the online verdicts against the full two-stage
// filter and assembles the capture analysis. The filter re-judges every
// stream from its summaries (plus the feed-time SNI), so provisional
// admissions that turn out wrong are corrected here — their DPI state
// is discarded and counted — and the result matches the batch pipeline.
func (a *Analyzer) Close() (*CaptureAnalysis, error) {
	if a.closed {
		return nil, errors.New("core: Close called twice")
	}
	a.closed = true
	return a.finalize()
}

// finalize is Close without the reuse guard: the full two-stage filter
// over the accumulated table, reconciliation, the parallel per-stream
// finalization, and the deterministic fold. MergeAnalyzers runs it over
// a synthetic analyzer holding the union of N shards' state, which is
// why sharded output is byte-identical to serial by construction — it
// is literally this code path either way.
func (a *Analyzer) finalize() (*CaptureAnalysis, error) {
	callStart, callEnd := a.cfg.CallStart, a.cfg.CallEnd
	if a.cfg.DefaultWindowToSpan && callStart.IsZero() && a.frames > 0 {
		callStart, callEnd = a.firstTS, a.lastTS
	}
	if a.table.Len() == 0 && a.frames > 0 {
		return nil, fmt.Errorf("core: no decodable transport packets (%d frames, %d decode errors)", a.frames, a.decodeErrs)
	}

	cm := newCaptureMetrics(a.opts.Metrics, a.cfg.Label)
	cm.captures.Inc()
	cm.frames.Add(uint64(a.frames))
	cm.decodeErrors.Add(uint64(a.decodeErrs))
	cm.packets.Add(uint64(a.frames - a.decodeErrs))
	cm.workers.Set(int64(a.opts.workers()))

	fres := filterpipe.RunWithSNI(a.table, filterpipe.Config{
		CallStart:    callStart,
		CallEnd:      callEnd,
		WindowSlack:  a.opts.WindowSlack,
		SNIBlocklist: a.opts.SNIBlocklist,
		Metrics:      a.opts.Metrics,
		Trace:        a.trace,
	}, func(s *flow.Stream) (string, bool) {
		st := a.states[s.Key]
		if st == nil {
			return "", false
		}
		return st.sni, st.sniOK
	})

	ca := &CaptureAnalysis{
		Label:        a.cfg.Label,
		Filter:       fres,
		Stats:        report.NewAppStats(a.cfg.Label),
		RTPSSRCs:     make(map[uint32]bool),
		DecodeErrors: a.decodeErrs,
	}
	for _, s := range a.table.Streams() {
		ca.Bytes += s.Bytes
	}

	// Reconciliation: streams admitted provisionally (DPI state built)
	// that the full filter removed. Their pipeline state is discarded —
	// monotonicity guarantees the reverse (provisionally removed but
	// finally RTC) cannot happen.
	for _, s := range fres.RemovedStreams {
		st := a.states[s.Key]
		if st == nil || st.removed || s.Key.Proto != layers.IPProtocolUDP {
			continue
		}
		if st.insp != nil || st.partial != nil {
			a.am.reclassified.Inc()
			if a.trace != nil {
				rm := fres.Removed[s.Key]
				a.trace.StreamReclassified(s.Key.String(), rm.Stage, string(rm.Rule))
			}
			st.insp = nil
			st.partial = nil
			st.span = nil
		}
		if !a.cfg.KeepPayloads {
			s.Packets = nil
		}
		if st.arena != nil {
			st.arena.Release()
			st.arena = nil
		}
	}

	// Finalize the surviving UDP RTC streams, fanned out exactly like
	// the batch path, and fold in deterministic RTC order.
	var udp []*flow.Stream
	for _, s := range fres.RTC {
		if s.Key.Proto == layers.IPProtocolUDP {
			udp = append(udp, s)
		}
	}
	cm.rtcStreams.Add(uint64(len(udp)))
	partials := make([]*streamPartial, len(udp))
	forEachIndexed(len(udp), a.opts.workers(), func(i int) error {
		start := cm.streamSeconds.Start()
		partials[i] = a.finishStream(udp[i])
		cm.streamSeconds.ObserveSince(start)
		return nil
	})

	foldStart := cm.foldSeconds.Start()
	foldPartials(ca, partials, a.opts.SkipFindings)
	cm.foldSeconds.ObserveSince(foldStart)

	if a.trace != nil {
		for _, f := range ca.Findings {
			a.trace.FindingEmitted(f.Kind, f.Detail)
		}
		a.trace.CaptureEnd(fmt.Sprintf("%d frames, %d decode errors", a.frames, a.decodeErrs))
	}

	a.active = 0
	a.am.active.Set(0)
	return ca, nil
}

// finishStream completes one final-RTC UDP stream: last DPI chunk,
// compliance, findings. Safe to run concurrently across streams — all
// touched state is per-stream (the shared engine and states map are
// read-only here).
func (a *Analyzer) finishStream(s *flow.Stream) *streamPartial {
	st := a.states[s.Key]
	if st.partial == nil {
		st.partial = newStreamPartial(st.span, s.Key.String(), a.opts.QoE)
		checker := compliance.NewCheckerWith(a.opts.Registry)
		checker.SetMetrics(a.opts.Metrics)
		st.session = checker.NewSession()
	}
	if st.insp != nil && st.insp.Pending() > 0 {
		st.partial.consume(s.Packets, st.insp.Finalize(), st.session, a.opts.SkipFindings)
	}
	if !a.cfg.KeepPayloads {
		s.Packets = nil
	}
	if st.arena != nil {
		// The verdicts and trace events copied whatever bytes they
		// keep, so the stream's pooled copies are dead; the shared pool
		// is safe to return to from concurrent workers.
		st.arena.Release()
		st.arena = nil
	}
	return st.partial
}
