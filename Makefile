# Build/test entry points, mirrored by .github/workflows/ci.yml.
GO          ?= go
FUZZTIME    ?= 5s
COVER_FLOOR ?= 70

.PHONY: all vet staticcheck build test race fuzz-smoke cover bench ci

all: build

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs the pinned staticcheck; local
# runs skip quietly when the binary is absent so `make ci` works in
# minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly against its seed corpus plus a short
# mutation budget. `go test -fuzz` accepts one target per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzInspect -fuzztime=$(FUZZTIME) ./internal/dpi
	$(GO) test -run='^$$' -fuzz='FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChannelData -fuzztime=$(FUZZTIME) ./internal/stun
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCompound -fuzztime=$(FUZZTIME) ./internal/rtcp
	$(GO) test -run='^$$' -fuzz=FuzzDecapsulate -fuzztime=$(FUZZTIME) ./internal/live

# Per-package coverage table, plus a hard floor on the observability
# package: internal/metrics must stay at or above $(COVER_FLOOR)%.
cover:
	$(GO) test -cover ./...
	$(GO) test -coverprofile=coverage.out ./internal/metrics
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3+0; printf "internal/metrics coverage: %s (floor %d%%)\n", $$3, floor; \
		 if (pct < floor) { print "coverage below floor"; exit 1 } }'

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

ci: vet staticcheck build race fuzz-smoke cover
