// Package trend is the compliance daemon's time-series store: one
// Point per finished analysis epoch, appended to a JSONL file on disk
// and mirrored in a bounded in-memory ring for queries. Opening an
// existing file reloads the ring, so the series survives a process
// restart; the HTTP handler serves the ring under the daemon's metrics
// endpoint as /compliance/trend.
//
// The schema is deliberately small and flat — one line per epoch, cheap
// to append, greppable, and trivially ingestible by any downstream
// tooling — rather than a real TSDB: a daemon emitting one point per
// epoch (seconds to minutes) writes a few hundred bytes a minute.
package trend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/rtc-compliance/rtcc/internal/qoe"
)

// Point is one epoch's compliance summary for one application label.
type Point struct {
	// Time is when the epoch was finalized.
	Time time.Time `json:"ts"`
	// App is the application label the epoch analyzed under.
	App string `json:"app"`
	// Reason records why the epoch ended: "epoch" (timer), "reload"
	// (SIGHUP config swap), or "shutdown" (SIGTERM drain).
	Reason string `json:"reason,omitempty"`
	// Messages and Compliant count extracted protocol messages and the
	// compliant subset; VolumeCompliance is their ratio (absent when no
	// messages were seen).
	Messages         int      `json:"messages"`
	Compliant        int      `json:"compliant"`
	VolumeCompliance *float64 `json:"volume_compliance,omitempty"`
	// TypesTotal and TypesCompliant are the message-type compliance
	// counts (a type is compliant when every instance passed).
	TypesTotal     int `json:"types_total"`
	TypesCompliant int `json:"types_compliant"`
	// Datagrams counts classified datagrams in the epoch.
	Datagrams int `json:"datagrams"`
	// Fed, Analyzed, and Dropped are the ingest accounting at the end
	// of the epoch (session-local, not cumulative). Conservation holds
	// per point: Fed == Analyzed + Dropped.
	Fed      uint64 `json:"fed"`
	Analyzed uint64 `json:"analyzed"`
	Dropped  uint64 `json:"dropped"`
	// QoE is the epoch's header-free QoE summary over media streams
	// (see internal/qoe). Absent when estimation is off or no stream
	// passed the media gate.
	QoE *qoe.Summary `json:"qoe,omitempty"`
}

// DefaultKeep bounds the in-memory ring when the caller does not.
const DefaultKeep = 1024

// Store is a JSONL-backed time series with a bounded in-memory ring.
// Safe for concurrent use (the daemon appends while HTTP queries read).
type Store struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	keep   int
	points []Point
}

// Open loads (or creates) the store at path, replaying any existing
// points into the ring. keep bounds the ring (<=0 selects DefaultKeep);
// the file itself is append-only and never truncated. An empty path
// keeps the series in memory only (the ring still serves queries, but
// nothing survives a restart).
func Open(path string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	s := &Store{path: path, keep: keep}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var p Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			f.Close()
			return nil, fmt.Errorf("trend: %s:%d: %w", path, line, err)
		}
		s.add(p)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("trend: %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("trend: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// add pushes p onto the ring, evicting the oldest past keep.
func (s *Store) add(p Point) {
	s.points = append(s.points, p)
	if len(s.points) > s.keep {
		n := copy(s.points, s.points[len(s.points)-s.keep:])
		s.points = s.points[:n]
	}
}

// Append records one point: a JSON line flushed to disk plus the ring.
func (s *Store) Append(p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		buf, err := json.Marshal(p)
		if err != nil {
			return fmt.Errorf("trend: %w", err)
		}
		if _, err := s.w.Write(append(buf, '\n')); err != nil {
			return fmt.Errorf("trend: %w", err)
		}
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("trend: %w", err)
		}
	}
	s.add(p)
	return nil
}

// Points snapshots the ring, oldest first.
func (s *Store) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Path reports the backing file.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the backing file. The ring stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// trendResponse is the /compliance/trend wire shape.
type trendResponse struct {
	Points []Point `json:"points"`
}

// ParseSince resolves a since= query value: an RFC 3339 timestamp is a
// cutoff directly; a Go duration ("15m", "1h30m") means that long
// before now.
func ParseSince(v string, now time.Time) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339, v); err == nil {
		return ts, nil
	}
	if d, err := time.ParseDuration(v); err == nil && d >= 0 {
		return now.Add(-d), nil
	}
	return time.Time{}, fmt.Errorf("trend: bad since value %q (want RFC3339 timestamp or duration)", v)
}

// writeJSONError is the handler's error path: errors are JSON like
// every success body, so clients can parse /compliance/trend responses
// with one decoder.
func writeJSONError(w http.ResponseWriter, msg string, code int) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // client gone
}

// Handler serves the ring as JSON (Content-Type: application/json on
// every response, errors included). Query parameters:
//
//	app=NAME     only points for this application label
//	since=WHEN   only points at or after WHEN: an RFC 3339 timestamp,
//	             or a duration ("15m") meaning that long before now
//	last=N       only the most recent N matching points
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		pts := s.Points()
		if app := req.URL.Query().Get("app"); app != "" {
			filtered := pts[:0]
			for _, p := range pts {
				if p.App == app {
					filtered = append(filtered, p)
				}
			}
			pts = filtered
		}
		if sinceStr := req.URL.Query().Get("since"); sinceStr != "" {
			cutoff, err := ParseSince(sinceStr, time.Now())
			if err != nil {
				writeJSONError(w, err.Error(), http.StatusBadRequest)
				return
			}
			filtered := pts[:0]
			for _, p := range pts {
				if !p.Time.Before(cutoff) {
					filtered = append(filtered, p)
				}
			}
			pts = filtered
		}
		if lastStr := req.URL.Query().Get("last"); lastStr != "" {
			n, err := strconv.Atoi(lastStr)
			if err != nil || n < 0 {
				writeJSONError(w, "trend: bad last parameter", http.StatusBadRequest)
				return
			}
			if n < len(pts) {
				pts = pts[len(pts)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(trendResponse{Points: pts}) //nolint:errcheck // client gone
	})
}
