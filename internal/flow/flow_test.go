package flow

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/pcap"
)

var (
	hostA = netip.MustParseAddr("192.168.1.10")
	hostB = netip.MustParseAddr("203.0.113.7")
	hostC = netip.MustParseAddr("198.51.100.3")
	t0    = time.Unix(1700000000, 0).UTC()
)

func decode(t *testing.T, frame []byte) *layers.Packet {
	t.Helper()
	pkt, err := layers.Decode(pcap.LinkTypeRaw, frame)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestBidirectionalGrouping(t *testing.T) {
	tbl := NewTable()
	// A->B then B->A: one stream, two directions.
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 5000, 6000, []byte("req"))))
	tbl.Add(t0.Add(time.Second), decode(t, layers.EncodeUDPv4(hostB, hostA, 6000, 5000, []byte("resp"))))
	if tbl.Len() != 1 {
		t.Fatalf("streams = %d, want 1", tbl.Len())
	}
	s := tbl.Streams()[0]
	if len(s.Packets) != 2 {
		t.Fatalf("packets = %d", len(s.Packets))
	}
	if s.Packets[0].Dir == s.Packets[1].Dir {
		t.Error("directions should differ")
	}
	if s.Bytes != 7 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	first, last := s.Span()
	if !first.Equal(t0) || !last.Equal(t0.Add(time.Second)) {
		t.Errorf("span = %v..%v", first, last)
	}
}

func TestDistinctStreams(t *testing.T) {
	tbl := NewTable()
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 5000, 6000, []byte("x"))))
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 5001, 6000, []byte("x")))) // different src port
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostC, 5000, 6000, []byte("x")))) // different dst addr
	seg := layers.TCP{SrcPort: 5000, DstPort: 6000, Flags: layers.TCPSyn}
	tbl.Add(t0, decode(t, layers.EncodeTCPv4(hostA, hostB, seg, nil))) // same tuple, TCP
	if tbl.Len() != 4 {
		t.Fatalf("streams = %d, want 4", tbl.Len())
	}
	if tbl.PacketCount() != 4 {
		t.Errorf("packets = %d", tbl.PacketCount())
	}
}

func TestTCPFlagsPreserved(t *testing.T) {
	tbl := NewTable()
	seg := layers.TCP{SrcPort: 1, DstPort: 2, Flags: layers.TCPSyn | layers.TCPAck}
	tbl.Add(t0, decode(t, layers.EncodeTCPv4(hostA, hostB, seg, nil)))
	p := tbl.Streams()[0].Packets[0]
	if p.TCPFlags != layers.TCPSyn|layers.TCPAck {
		t.Errorf("flags = %#x", p.TCPFlags)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	e1 := Endpoint{Addr: hostA, Port: 5000}
	e2 := Endpoint{Addr: hostB, Port: 6000}
	k1 := KeyFor(layers.IPProtocolUDP, e1, e2)
	k2 := KeyFor(layers.IPProtocolUDP, e2, e1)
	if k1 != k2 {
		t.Errorf("keys differ: %v vs %v", k1, k2)
	}
	// Same address, different ports.
	e3 := Endpoint{Addr: hostA, Port: 1}
	e4 := Endpoint{Addr: hostA, Port: 2}
	if KeyFor(layers.IPProtocolUDP, e3, e4) != KeyFor(layers.IPProtocolUDP, e4, e3) {
		t.Error("same-address keys differ")
	}
}

func TestThreeTupleIndex(t *testing.T) {
	tbl := NewTable()
	// Two different source ports to the same destination: one 3-tuple,
	// two streams. This is the APNS NAT-rebinding pattern.
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 5000, 443, []byte("x"))))
	tbl.Add(t0.Add(time.Minute), decode(t, layers.EncodeUDPv4(hostA, hostB, 5050, 443, []byte("x"))))
	if tbl.Len() != 2 {
		t.Fatalf("streams = %d", tbl.Len())
	}
	tt := ThreeTuple{Proto: layers.IPProtocolUDP, Addr: hostB, Port: 443}
	sp, ok := tbl.ThreeTupleSpan(tt)
	if !ok {
		t.Fatal("3-tuple not indexed")
	}
	if !sp.First.Equal(t0) || !sp.Last.Equal(t0.Add(time.Minute)) {
		t.Errorf("span = %+v", sp)
	}
	if _, ok := tbl.ThreeTupleSpan(ThreeTuple{Proto: layers.IPProtocolUDP, Addr: hostC, Port: 443}); ok {
		t.Error("unseen 3-tuple reported")
	}
	tts := tbl.ThreeTuples()
	if len(tts) != 1 { // only B:443; A is never a destination here
		t.Errorf("3-tuples = %v", tts)
	}
}

func TestNonTransportIgnored(t *testing.T) {
	tbl := NewTable()
	pkt := &layers.Packet{} // no layers at all
	if tbl.Add(t0, pkt) {
		t.Error("packet without transport accepted")
	}
	if tbl.Len() != 0 {
		t.Error("stream created for non-transport packet")
	}
}

func TestSpanExtend(t *testing.T) {
	var s Span
	s.Extend(t0.Add(time.Second))
	s.Extend(t0)
	s.Extend(t0.Add(2 * time.Second))
	if !s.First.Equal(t0) || !s.Last.Equal(t0.Add(2*time.Second)) {
		t.Errorf("span = %+v", s)
	}
}

func TestCount(t *testing.T) {
	tbl := NewTable()
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 1, 2, []byte("abc"))))
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 1, 2, []byte("de"))))
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostC, 1, 2, []byte("f"))))
	c := Count(tbl.Streams())
	if c.Streams != 2 || c.Packets != 3 || c.Bytes != 6 {
		t.Errorf("counts = %+v", c)
	}
}

func TestStreamsInsertionOrder(t *testing.T) {
	tbl := NewTable()
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 1, 2, nil)))
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostC, 3, 4, nil)))
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 1, 2, nil)))
	ss := tbl.Streams()
	if len(ss) != 2 {
		t.Fatalf("streams = %d", len(ss))
	}
	if ss[0].Key.A.Port != 1 && ss[0].Key.B.Port != 1 {
		t.Error("insertion order not preserved")
	}
}

// Property: packets from both directions of any endpoint pair always
// land in the same stream, and total packet count is preserved.
func TestQuickGroupingInvariants(t *testing.T) {
	f := func(ports []uint16, flip []bool) bool {
		tbl := NewTable()
		n := len(ports)
		if len(flip) < n {
			n = len(flip)
		}
		for i := 0; i < n; i++ {
			p := ports[i]%100 + 1
			src, dst := hostA, hostB
			sp, dp := p, uint16(9000)
			if flip[i] {
				src, dst = dst, src
				sp, dp = dp, sp
			}
			frame := layers.EncodeUDPv4(src, dst, sp, dp, []byte{1})
			pkt, err := layers.Decode(pcap.LinkTypeRaw, frame)
			if err != nil {
				return false
			}
			tbl.Add(time.Unix(int64(i), 0), pkt)
		}
		if tbl.PacketCount() != n {
			return false
		}
		// Distinct ports used determines stream count.
		seen := map[uint16]bool{}
		for i := 0; i < n; i++ {
			seen[ports[i]%100+1] = true
		}
		return tbl.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGetByKey(t *testing.T) {
	tbl := NewTable()
	tbl.Add(t0, decode(t, layers.EncodeUDPv4(hostA, hostB, 1, 2, []byte("x"))))
	key := KeyFor(layers.IPProtocolUDP, Endpoint{Addr: hostA, Port: 1}, Endpoint{Addr: hostB, Port: 2})
	if s := tbl.Get(key); s == nil || len(s.Packets) != 1 {
		t.Errorf("Get = %v", s)
	}
	missing := KeyFor(layers.IPProtocolUDP, Endpoint{Addr: hostA, Port: 9}, Endpoint{Addr: hostB, Port: 9})
	if s := tbl.Get(missing); s != nil {
		t.Error("Get returned a stream for a missing key")
	}
}

func TestEndpointAndKeyStrings(t *testing.T) {
	e := Endpoint{Addr: hostA, Port: 5000}
	if e.String() != "192.168.1.10:5000" {
		t.Errorf("endpoint = %s", e)
	}
	k := KeyFor(layers.IPProtocolUDP, e, Endpoint{Addr: hostB, Port: 6000})
	if k.String() == "" {
		t.Error("empty key string")
	}
	tt := ThreeTuple{Proto: layers.IPProtocolUDP, Addr: hostB, Port: 53}
	if tt.String() != "UDP -> 203.0.113.7:53" {
		t.Errorf("3-tuple = %s", tt)
	}
}
