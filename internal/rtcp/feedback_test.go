package rtcp

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNackRoundTrip(t *testing.T) {
	pairs := []NackPair{{PacketID: 100, BLP: 0b1010}, {PacketID: 500, BLP: 0}}
	got, err := DecodeNackFCI(EncodeNackFCI(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pairs) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestNackLostExpansion(t *testing.T) {
	p := NackPair{PacketID: 10, BLP: 0b101}
	want := []uint16{10, 11, 13}
	if got := p.Lost(); !reflect.DeepEqual(got, want) {
		t.Errorf("Lost = %v, want %v", got, want)
	}
}

func TestNackRejects(t *testing.T) {
	if _, err := DecodeNackFCI(nil); !errors.Is(err, ErrBadFCI) {
		t.Error("empty NACK accepted")
	}
	if _, err := DecodeNackFCI([]byte{1, 2, 3}); !errors.Is(err, ErrBadFCI) {
		t.Error("ragged NACK accepted")
	}
}

func TestTWCCRoundTrip(t *testing.T) {
	fb := TWCCFeedback{
		BaseSequence:    1000,
		PacketCount:     6,
		ReferenceTimeMS: 64 * 7,
		FeedbackCount:   3,
		Statuses: []uint8{
			TWCCSmallDelta, TWCCSmallDelta, TWCCNotReceived,
			TWCCSmallDelta, TWCCLargeDelta, TWCCSmallDelta,
		},
		DeltasUS: []int64{250, 500, 1000, 40000, 750},
	}
	fci, err := EncodeTWCCFCI(fb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTWCCFCI(fci)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseSequence != fb.BaseSequence || got.PacketCount != fb.PacketCount ||
		got.ReferenceTimeMS != fb.ReferenceTimeMS || got.FeedbackCount != fb.FeedbackCount {
		t.Errorf("header = %+v", got)
	}
	if !reflect.DeepEqual(got.Statuses, fb.Statuses) {
		t.Errorf("statuses = %v", got.Statuses)
	}
	if !reflect.DeepEqual(got.DeltasUS, fb.DeltasUS) {
		t.Errorf("deltas = %v", got.DeltasUS)
	}
}

func TestTWCCRunLengthCompression(t *testing.T) {
	statuses := make([]uint8, 100)
	for i := range statuses {
		statuses[i] = TWCCSmallDelta
	}
	deltas := make([]int64, 100)
	for i := range deltas {
		deltas[i] = 250
	}
	fci, err := EncodeTWCCFCI(TWCCFeedback{PacketCount: 100, Statuses: statuses, DeltasUS: deltas})
	if err != nil {
		t.Fatal(err)
	}
	// Header 8 + one run-length chunk 2 + 100 one-byte deltas + padding.
	if len(fci) > 8+2+100+3 {
		t.Errorf("run-length encoding inefficient: %d bytes", len(fci))
	}
}

func TestTWCCStatusVectorDecoding(t *testing.T) {
	// Hand-build an FCI with a one-bit status vector chunk: 14 packets,
	// alternating received/lost.
	fci := []byte{
		0x00, 0x01, // base seq
		0x00, 0x0e, // packet count 14
		0x00, 0x00, 0x01, // reference time 1 (64 ms)
		0x05,       // fb count
		0xaa, 0xaa, // 1-bit vector: 0b10101010101010 pattern with marker bits
	}
	// 0xaaaa = 1010 1010 1010 1010: top bit 1 (vector), next 0 (one-bit).
	// Symbols are the low 14 bits: 10 1010 1010 1010.
	fb, err := DecodeTWCCFCI(append(fci, 0xfa, 0xfa, 0xfa, 0xfa, 0xfa, 0xfa, 0xfa)) // deltas for received
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Statuses) != 14 {
		t.Fatalf("statuses = %d", len(fb.Statuses))
	}
	received := 0
	for _, s := range fb.Statuses {
		if s == TWCCSmallDelta {
			received++
		}
	}
	if received != 7 {
		t.Errorf("received = %d, want 7", received)
	}
	if len(fb.DeltasUS) != 7 {
		t.Errorf("deltas = %d", len(fb.DeltasUS))
	}
}

func TestTWCCRejects(t *testing.T) {
	if _, err := EncodeTWCCFCI(TWCCFeedback{PacketCount: 2, Statuses: []uint8{1}}); !errors.Is(err, ErrBadFCI) {
		t.Error("status/count mismatch accepted")
	}
	if _, err := EncodeTWCCFCI(TWCCFeedback{PacketCount: 1, Statuses: []uint8{9}}); !errors.Is(err, ErrBadFCI) {
		t.Error("bad symbol accepted")
	}
	if _, err := EncodeTWCCFCI(TWCCFeedback{PacketCount: 1, Statuses: []uint8{TWCCSmallDelta}}); !errors.Is(err, ErrBadFCI) {
		t.Error("missing delta accepted")
	}
	if _, err := DecodeTWCCFCI([]byte{1, 2, 3}); !errors.Is(err, ErrBadFCI) {
		t.Error("truncated header accepted")
	}
	// Declared packets with no chunks.
	if _, err := DecodeTWCCFCI([]byte{0, 1, 0, 9, 0, 0, 0, 1}); !errors.Is(err, ErrBadFCI) {
		t.Error("missing chunks accepted")
	}
}

func TestREMBRoundTrip(t *testing.T) {
	cases := []REMB{
		{BitrateBPS: 1_000_000, SSRCs: []uint32{0x1234}},
		{BitrateBPS: 250_000, SSRCs: []uint32{1, 2, 3}},
		{BitrateBPS: 100_000_000, SSRCs: []uint32{9}},
	}
	for _, remb := range cases {
		fci, err := EncodeREMBFCI(remb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeREMBFCI(fci)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.SSRCs, remb.SSRCs) {
			t.Errorf("ssrcs = %v", got.SSRCs)
		}
		// Bitrate is mantissa-rounded; must be within 1/2^18.
		lo := remb.BitrateBPS - remb.BitrateBPS>>17
		if got.BitrateBPS < lo || got.BitrateBPS > remb.BitrateBPS {
			t.Errorf("bitrate = %d, want ≈%d", got.BitrateBPS, remb.BitrateBPS)
		}
	}
}

func TestREMBRejects(t *testing.T) {
	if _, err := EncodeREMBFCI(REMB{BitrateBPS: 1, SSRCs: nil}); !errors.Is(err, ErrBadFCI) {
		t.Error("zero SSRCs accepted")
	}
	if _, err := DecodeREMBFCI([]byte("RAMB....")); !errors.Is(err, ErrBadFCI) {
		t.Error("bad identifier accepted")
	}
	fci, _ := EncodeREMBFCI(REMB{BitrateBPS: 1000, SSRCs: []uint32{1, 2}})
	if _, err := DecodeREMBFCI(fci[:len(fci)-2]); !errors.Is(err, ErrBadFCI) {
		t.Error("truncated SSRC list accepted")
	}
}

// Property: TWCC encode→decode identity for run-length-friendly inputs.
func TestQuickTWCCIdentity(t *testing.T) {
	f := func(base uint16, syms []uint8) bool {
		if len(syms) == 0 || len(syms) > 200 {
			return true
		}
		fb := TWCCFeedback{BaseSequence: base, PacketCount: uint16(len(syms))}
		for _, s := range syms {
			sym := s % 3
			fb.Statuses = append(fb.Statuses, sym)
			switch sym {
			case TWCCSmallDelta:
				fb.DeltasUS = append(fb.DeltasUS, 250*int64(s%50))
			case TWCCLargeDelta:
				fb.DeltasUS = append(fb.DeltasUS, -250*int64(s%50))
			}
		}
		fci, err := EncodeTWCCFCI(fb)
		if err != nil {
			return false
		}
		got, err := DecodeTWCCFCI(fci)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Statuses, fb.Statuses) &&
			reflect.DeepEqual(got.DeltasUS, fb.DeltasUS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeTWCCFCI and friends never panic on arbitrary input.
func TestQuickFCINeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeTWCCFCI(b)
		_, _ = DecodeNackFCI(b)
		_, _ = DecodeREMBFCI(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
