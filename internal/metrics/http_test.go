package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", L("app", "Zoom")).Add(7)
	r.Histogram("lat_seconds", nil).Observe(0.001)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Counters["requests_total{app=Zoom}"] != 7 {
		t.Errorf("/metrics counters = %v", snap.Counters)
	}
	if snap.Histograms["lat_seconds"].Count != 1 {
		t.Errorf("/metrics histograms = %v", snap.Histograms)
	}

	code, body = get(t, ts.URL+"/debug/vars")
	if code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars status %d body %.60q", code, body)
	}

	code, body = get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, _ = get(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `"x": 1`) {
		t.Errorf("served /metrics: status %d body %.120q", code, body)
	}
	// The registry is published to expvar as "rtcc".
	code, body = get(t, "http://"+srv.Addr()+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"rtcc"`) {
		t.Errorf("/debug/vars missing published registry: status %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("metrics_test_pub")
	r2 := NewRegistry()
	// Must not panic on duplicate publish.
	r2.PublishExpvar("metrics_test_pub")
}
