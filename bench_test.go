// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§5), plus the §4.1.1 DPI offset-limit sweep and
// codec microbenchmarks.
//
// Each table/figure bench runs the full pipeline over the synthetic
// experiment matrix and reports the paper's headline numbers as custom
// benchmark metrics, so `go test -bench=. -benchmem` both measures the
// framework's throughput and prints the reproduced results. The
// human-readable tables themselves come from `go run ./cmd/rtcreport`.
package rtcc_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/bench"
	"github.com/rtc-compliance/rtcc/internal/compliance"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/filterpipe"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/ice"
	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/pcap"
	"github.com/rtc-compliance/rtcc/internal/rtcp"
	"github.com/rtc-compliance/rtcc/internal/rtp"
	"github.com/rtc-compliance/rtcc/internal/srtp"
	"github.com/rtc-compliance/rtcc/internal/stun"
	"github.com/rtc-compliance/rtcc/internal/trace"
)

var benchStart = time.Unix(1700000000, 0).UTC()

// benchCaptures generates the experiment matrix once and shares it
// across benchmarks (generation cost stays out of the timed sections).
var (
	capturesOnce sync.Once
	captures     []*rtcc.Capture
)

func matrixCaptures(b *testing.B) []*rtcc.Capture {
	b.Helper()
	capturesOnce.Do(func() {
		configs := rtcc.Matrix(rtcc.MatrixOptions{
			Runs:         1,
			CallDuration: 10 * time.Second,
			PrePost:      8 * time.Second,
			MediaRate:    25,
			Start:        benchStart,
			BaseSeed:     500,
			Background:   true,
		})
		for _, cfg := range configs {
			cap, err := rtcc.GenerateCapture(cfg)
			if err != nil {
				panic(err)
			}
			captures = append(captures, cap)
		}
	})
	return captures
}

// decodedStreams builds flow tables for every capture, outside timers.
func decodedStreams(b *testing.B) []*flow.Table {
	b.Helper()
	caps := matrixCaptures(b)
	tables := make([]*flow.Table, len(caps))
	for i, cap := range caps {
		t := flow.NewTable()
		for _, f := range cap.Frames() {
			pkt, err := layers.Decode(pcap.LinkTypeRaw, f.Data)
			if err != nil {
				continue
			}
			t.Add(f.Timestamp, pkt)
		}
		tables[i] = t
	}
	return tables
}

// analyzeMatrix runs the full pipeline over the shared captures.
func analyzeMatrix(b *testing.B) *rtcc.MatrixAnalysis {
	b.Helper()
	ma, err := rtcc.RunMatrix(rtcc.MatrixOptions{
		Runs:         1,
		CallDuration: 10 * time.Second,
		PrePost:      8 * time.Second,
		MediaRate:    25,
		Start:        benchStart,
		BaseSeed:     500,
		Background:   true,
	}, rtcc.Options{SkipFindings: true})
	if err != nil {
		b.Fatal(err)
	}
	return ma
}

// BenchmarkTable1_FilteringPipeline regenerates Table 1: the two-stage
// filter over every capture. Reported metrics: surviving RTC streams
// and packets across the matrix.
func BenchmarkTable1_FilteringPipeline(b *testing.B) {
	caps := matrixCaptures(b)
	tables := decodedStreams(b)
	var rtcStreams, rtcPackets, packets int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtcStreams, rtcPackets, packets = 0, 0, 0
		for j, table := range tables {
			res := filterpipe.Run(table, filterpipe.Config{
				CallStart: caps[j].CallStart,
				CallEnd:   caps[j].CallEnd,
			})
			rtcStreams += res.RTCUDP.Streams + res.RTCTCP.Streams
			rtcPackets += res.RTCUDP.Packets + res.RTCTCP.Packets
			packets += table.PacketCount()
		}
	}
	b.ReportMetric(float64(packets*b.N)/b.Elapsed().Seconds(), "packets/s")
	b.ReportMetric(float64(rtcStreams), "rtc_streams")
	b.ReportMetric(float64(rtcPackets), "rtc_packets")
}

// dpiOverMatrix runs DPI over every RTC UDP stream of every capture.
func dpiOverMatrix(b *testing.B, engine *dpi.Engine, visit func(app rtcc.App, r dpi.Result)) {
	caps := matrixCaptures(b)
	tables := decodedStreams(b)
	for j, table := range tables {
		res := filterpipe.Run(table, filterpipe.Config{
			CallStart: caps[j].CallStart,
			CallEnd:   caps[j].CallEnd,
		})
		for _, s := range res.RTC {
			if s.Key.Proto != layers.IPProtocolUDP {
				continue
			}
			payloads := make([][]byte, len(s.Packets))
			for k, p := range s.Packets {
				payloads[k] = p.Payload
			}
			for _, r := range engine.InspectStream(payloads) {
				visit(caps[j].Config.App, r)
			}
		}
	}
}

// BenchmarkTable2_MessageDistribution regenerates Table 2: message
// counts per protocol family per app. Reported metrics: Zoom's fully
// proprietary share and Meet's STUN/TURN share (the table's two
// signature values).
func BenchmarkTable2_MessageDistribution(b *testing.B) {
	var zoomFP, zoomUnits, meetSTUN, meetUnits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zoomFP, zoomUnits, meetSTUN, meetUnits = 0, 0, 0, 0
		dpiOverMatrix(b, dpi.NewEngine(), func(app rtcc.App, r dpi.Result) {
			switch app {
			case rtcc.Zoom:
				if r.Class == dpi.ClassFullyProprietary {
					zoomFP++
					zoomUnits++
				}
				zoomUnits += len(r.Messages)
			case rtcc.GoogleMeet:
				if r.Class == dpi.ClassFullyProprietary {
					meetUnits++
				}
				for _, m := range r.Messages {
					if m.Protocol.Family() == dpi.ProtoSTUN {
						meetSTUN++
					}
					meetUnits++
				}
			}
		})
	}
	b.ReportMetric(100*float64(zoomFP)/float64(zoomUnits), "zoom_fullyprop_%")
	b.ReportMetric(100*float64(meetSTUN)/float64(meetUnits), "meet_stun_%")
}

// BenchmarkFigure3_DatagramBreakdown regenerates Figure 3: datagram
// classification per app. Metrics: Zoom and FaceTime proprietary-header
// shares.
func BenchmarkFigure3_DatagramBreakdown(b *testing.B) {
	counts := map[rtcc.App]map[dpi.Class]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts = map[rtcc.App]map[dpi.Class]int{}
		dpiOverMatrix(b, dpi.NewEngine(), func(app rtcc.App, r dpi.Result) {
			m := counts[app]
			if m == nil {
				m = map[dpi.Class]int{}
				counts[app] = m
			}
			m[r.Class]++
		})
	}
	share := func(app rtcc.App, class dpi.Class) float64 {
		total := 0
		for _, n := range counts[app] {
			total += n
		}
		if total == 0 {
			return 0
		}
		return 100 * float64(counts[app][class]) / float64(total)
	}
	b.ReportMetric(share(rtcc.Zoom, dpi.ClassProprietaryHeader), "zoom_prophdr_%")
	b.ReportMetric(share(rtcc.FaceTime, dpi.ClassProprietaryHeader), "facetime_prophdr_%")
	b.ReportMetric(share(rtcc.WhatsApp, dpi.ClassStandard), "whatsapp_standard_%")
}

// BenchmarkFigure4_VolumeCompliance regenerates Figure 4: the
// volume-based compliance ratios. Metrics: the app-centric extremes and
// the QUIC protocol ratio.
func BenchmarkFigure4_VolumeCompliance(b *testing.B) {
	var ma *rtcc.MatrixAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma = analyzeMatrix(b)
	}
	b.StopTimer()
	zoom, _ := ma.Aggregate.App(string(rtcc.Zoom)).VolumeCompliance()
	ft, _ := ma.Aggregate.App(string(rtcc.FaceTime)).VolumeCompliance()
	quic, _, _ := ma.Aggregate.ProtocolRollup(dpi.ProtoQUIC)
	b.ReportMetric(100*zoom, "zoom_vol_%")
	b.ReportMetric(100*ft, "facetime_vol_%")
	b.ReportMetric(100*float64(quic.Compliant)/float64(quic.Messages), "quic_vol_%")
}

// BenchmarkTable3_TypeCompliance regenerates Table 3: the
// type-compliance matrix. Metrics: the protocol-centric bottom row.
func BenchmarkTable3_TypeCompliance(b *testing.B) {
	var ma *rtcc.MatrixAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma = analyzeMatrix(b)
	}
	b.StopTimer()
	for _, fam := range []dpi.Protocol{dpi.ProtoSTUN, dpi.ProtoRTP, dpi.ProtoRTCP, dpi.ProtoQUIC} {
		_, c, t := ma.Aggregate.ProtocolRollup(fam)
		if t == 0 {
			continue
		}
		name := map[dpi.Protocol]string{
			dpi.ProtoSTUN: "stun", dpi.ProtoRTP: "rtp",
			dpi.ProtoRTCP: "rtcp", dpi.ProtoQUIC: "quic",
		}[fam]
		b.ReportMetric(float64(c), name+"_compliant_types")
		b.ReportMetric(float64(t), name+"_total_types")
	}
}

// typeTableBench regenerates one observed-types table (Tables 4-6),
// reporting the distinct type counts per family.
func typeTableBench(b *testing.B, fam dpi.Protocol, metric string) {
	var ma *rtcc.MatrixAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma = analyzeMatrix(b)
	}
	b.StopTimer()
	total := 0
	nonCompliant := 0
	for _, app := range ma.Aggregate.Apps() {
		c, t := app.TypeCompliance(fam)
		total += t
		nonCompliant += t - c
	}
	b.ReportMetric(float64(total), metric+"_types_observed")
	b.ReportMetric(float64(nonCompliant), metric+"_types_noncompliant")
}

// BenchmarkTable4_STUNTypes regenerates Table 4 (STUN/TURN types).
func BenchmarkTable4_STUNTypes(b *testing.B) { typeTableBench(b, dpi.ProtoSTUN, "stun") }

// BenchmarkTable5_RTPTypes regenerates Table 5 (RTP payload types).
func BenchmarkTable5_RTPTypes(b *testing.B) { typeTableBench(b, dpi.ProtoRTP, "rtp") }

// BenchmarkTable6_RTCPTypes regenerates Table 6 (RTCP packet types).
func BenchmarkTable6_RTCPTypes(b *testing.B) { typeTableBench(b, dpi.ProtoRTCP, "rtcp") }

// BenchmarkFigure5_TypeComplianceRatio regenerates Figure 5: type-based
// compliance per protocol and per app. Metrics: the two extremes the
// paper highlights (Zoom most, Discord least compliant by type).
func BenchmarkFigure5_TypeComplianceRatio(b *testing.B) {
	var ma *rtcc.MatrixAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma = analyzeMatrix(b)
	}
	b.StopTimer()
	zc, zt := ma.Aggregate.App(string(rtcc.Zoom)).TypeCompliance(dpi.ProtoUnknown)
	dc, dt := ma.Aggregate.App(string(rtcc.Discord)).TypeCompliance(dpi.ProtoUnknown)
	b.ReportMetric(100*float64(zc)/float64(zt), "zoom_type_%")
	b.ReportMetric(100*float64(dc)/float64(maxInt(dt, 1)), "discord_type_%")
}

// BenchmarkDPI_OffsetSweep reproduces the §4.1.1 k-limit experiment:
// message recall and cost as the candidate-extraction offset limit
// varies. k=200 must reach the recall of a full-payload scan.
func BenchmarkDPI_OffsetSweep(b *testing.B) {
	caps := matrixCaptures(b)
	tables := decodedStreams(b)
	type streamSet struct {
		payloads [][]byte
	}
	var streams []streamSet
	for j, table := range tables {
		res := filterpipe.Run(table, filterpipe.Config{
			CallStart: caps[j].CallStart, CallEnd: caps[j].CallEnd,
		})
		for _, s := range res.RTC {
			if s.Key.Proto != layers.IPProtocolUDP {
				continue
			}
			payloads := make([][]byte, len(s.Packets))
			for k, p := range s.Packets {
				payloads[k] = p.Payload
			}
			streams = append(streams, streamSet{payloads})
		}
	}
	for _, k := range []int{16, 64, 200, 1500} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			engine := &dpi.Engine{MaxOffset: k}
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = 0
				for _, ss := range streams {
					for _, r := range engine.InspectStream(ss.payloads) {
						msgs += len(r.Messages)
					}
				}
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// --- Concurrent analysis engine benchmarks. ---

// matrixOptionsForBench are the shared full-matrix options used by the
// parallel-vs-serial comparisons.
var matrixOptionsForBench = rtcc.MatrixOptions{
	Runs:         1,
	CallDuration: 10 * time.Second,
	PrePost:      8 * time.Second,
	MediaRate:    25,
	Start:        benchStart,
	BaseSeed:     500,
	Background:   true,
}

func runMatrixWorkers(b *testing.B, workers int) *rtcc.MatrixAnalysis {
	b.Helper()
	ma, err := rtcc.RunMatrix(matrixOptionsForBench, rtcc.Options{SkipFindings: true, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return ma
}

// BenchmarkRunMatrix_Workers measures full-matrix throughput (capture
// generation + analysis) at several worker-pool sizes. workers=1 is the
// serial reference path.
func BenchmarkRunMatrix_Workers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var ma *rtcc.MatrixAnalysis
			for i := 0; i < b.N; i++ {
				ma = runMatrixWorkers(b, w)
			}
			b.ReportMetric(float64(ma.Captures*b.N)/b.Elapsed().Seconds(), "captures/s")
		})
	}
}

// BenchmarkRunMatrix_ParallelSpeedup reports the parallel-vs-serial
// speedup of the full-matrix pipeline as a custom metric: the serial
// (Workers=1) wall time divided by the parallel (all cores) per-run
// time. On a multi-core runner this should comfortably exceed 1.5x;
// on a single core it degenerates to ≈1x.
func BenchmarkRunMatrix_ParallelSpeedup(b *testing.B) {
	start := time.Now()
	runMatrixWorkers(b, 1)
	serial := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMatrixWorkers(b, runtime.GOMAXPROCS(0))
	}
	parallel := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkAnalyzeCapture_StreamWorkers isolates the stream-level pool
// inside AnalyzeCapture on one large capture (no generation cost).
func BenchmarkAnalyzeCapture_StreamWorkers(b *testing.B) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.GoogleMeet, Network: rtcc.WiFiRelay, Seed: 9,
		Start: benchStart, CallDuration: 10 * time.Second,
		PrePost: 8 * time.Second, MediaRate: 25, Background: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rtcc.Analyze(cap, rtcc.Options{SkipFindings: true, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeCapture_MetricsOverhead compares the full pipeline
// over one capture with metrics disabled (nil registry — the default)
// and enabled. The nil path must stay within noise of the pre-metrics
// pipeline: disabled instruments are nil pointers whose methods branch
// and return, and no timestamps are taken.
func BenchmarkAnalyzeCapture_MetricsOverhead(b *testing.B) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.GoogleMeet, Network: rtcc.WiFiRelay, Seed: 9,
		Start: benchStart, CallDuration: 10 * time.Second,
		PrePost: 8 * time.Second, MediaRate: 25, Background: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	frames := cap.Frames()
	bytes := 0
	for _, f := range frames {
		bytes += len(f.Data)
	}
	b.Run("disabled", func(b *testing.B) {
		b.SetBytes(int64(bytes))
		for i := 0; i < b.N; i++ {
			if _, err := rtcc.Analyze(cap, rtcc.Options{SkipFindings: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.SetBytes(int64(bytes))
		for i := 0; i < b.N; i++ {
			reg := rtcc.NewMetricsRegistry()
			if _, err := rtcc.Analyze(cap, rtcc.Options{SkipFindings: true, Metrics: reg}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Codec and pipeline microbenchmarks. ---

func BenchmarkSTUNDecode(b *testing.B) {
	r := ice.NewRand(1)
	local := &ice.Agent{Ufrag: "a", Password: "passwordpasswordpass", Controlling: true}
	remote := &ice.Agent{Ufrag: "b", Password: "passwordpasswordpass"}
	raw := local.BindingRequest(r, remote, 100, true).Raw
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stun.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTPDecode(b *testing.B) {
	p := &rtp.Packet{PayloadType: 111, SequenceNumber: 1, Timestamp: 960, SSRC: 7,
		Extension: &rtp.Extension{Profile: rtp.ProfileOneByte,
			Elements: []rtp.ExtensionElement{{ID: 1, Payload: []byte{1, 2, 3}}}},
		Payload: make([]byte, 960)}
	raw := p.Encode()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtp.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTCPDecodeCompound(b *testing.B) {
	comp := rtcp.Compound(
		rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 1, Info: rtcp.SenderInfo{NTPTimestamp: 1}}),
		rtcp.EncodeSDES(&rtcp.SDES{Chunks: []rtcp.SDESChunk{{SSRC: 1, Items: []rtcp.SDESItem{{Type: rtcp.SDESCNAME, Text: "a@b"}}}}}),
		rtcp.EncodeFeedback(rtcp.TypeRTPFB, &rtcp.Feedback{FMT: 15, SenderSSRC: 1, MediaSSRC: 2, FCI: make([]byte, 16)}),
	)
	b.SetBytes(int64(len(comp)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rtcp.DecodeCompound(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSRTCPProtect(b *testing.B) {
	ctx, err := srtp.NewContext(make([]byte, srtp.MasterKeyLen), make([]byte, srtp.MasterSaltLen))
	if err != nil {
		b.Fatal(err)
	}
	plain := rtcp.EncodeSR(&rtcp.SenderReport{SSRC: 9, Info: rtcp.SenderInfo{NTPTimestamp: 7}})
	b.SetBytes(int64(len(plain)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.ProtectRTCP(plain, uint32(i), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplianceCheckSTUN(b *testing.B) {
	r := ice.NewRand(1)
	msg := ice.ServerBindingRequest(r)
	m := dpi.Message{Protocol: dpi.ProtoSTUN, Length: len(msg.Raw), STUN: msg}
	checker := compliance.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := checker.NewSession()
		s.Check(m, benchStart)
	}
}

func BenchmarkGenerateCall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := trace.Generate(trace.CaptureConfig{
			App: rtcc.Zoom, Network: rtcc.WiFiRelay, Seed: uint64(i),
			Start: benchStart, CallDuration: 5 * time.Second,
			PrePost: 2 * time.Second, MediaRate: 25, Background: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// pcapBench holds one large background-heavy capture serialized as a
// classic pcap file, shared by the streaming-vs-batch file benchmarks
// (the traffic mix a capture host actually sees: a short call inside a
// long capture full of unrelated noise).
var (
	pcapBenchOnce sync.Once
	pcapBenchRaw  []byte
	pcapBenchCap  *rtcc.Capture
)

func pcapBenchFile(b *testing.B) ([]byte, *rtcc.Capture) {
	b.Helper()
	pcapBenchOnce.Do(func() {
		cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
			App: rtcc.Zoom, Network: rtcc.WiFiRelay, Seed: 4242,
			Start: benchStart, CallDuration: 3 * time.Second,
			PrePost: 90 * time.Second, MediaRate: 10, Background: true,
			BackgroundBulk: 6000,
		})
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		w := pcap.NewWriter(&buf, pcap.LinkTypeRaw)
		for _, f := range cap.Frames() {
			if err := w.WritePacket(f); err != nil {
				panic(err)
			}
		}
		pcapBenchRaw, pcapBenchCap = buf.Bytes(), cap
	})
	return pcapBenchRaw, pcapBenchCap
}

// BenchmarkAnalyzePCAP_Streaming measures the single-pass file path:
// one reusable record buffer, per-stream state only, payloads dropped
// as soon as the online filter removes a stream or the DPI consumes
// them. Run with -benchmem; bytes/op against the Batch twin is the
// memory win, and peak-streams is the high-water mark of concurrently
// live per-stream states (the quantity that bounds resident memory).
func BenchmarkAnalyzePCAP_Streaming(b *testing.B) {
	raw, cap := pcapBenchFile(b)
	reg := rtcc.NewMetricsRegistry()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtcc.AnalyzePCAP(bytes.NewReader(raw), "zoom", cap.CallStart, cap.CallEnd,
			rtcc.Options{SkipFindings: true, Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	peak := reg.Snapshot().Gauges[metrics.Name("core_active_streams_peak", metrics.L("app", "zoom"))]
	b.ReportMetric(float64(peak), "peak-streams")
}

// BenchmarkAnalyzePCAP_Batch is the read-everything baseline: every
// frame buffered up front and every per-packet record retained through
// the analysis — the allocation profile of the pre-streaming pipeline,
// whose output the streaming path reproduces byte-for-byte.
func BenchmarkAnalyzePCAP_Batch(b *testing.B) {
	raw, cap := pcapBenchFile(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := pcap.NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		frames, err := r.ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		a, err := rtcc.NewAnalyzer(rtcc.AnalyzerConfig{
			Label: "zoom", LinkType: pcap.LinkTypeRaw,
			CallStart: cap.CallStart, CallEnd: cap.CallEnd,
			KeepPayloads: true, FramesStable: true,
		}, rtcc.Options{SkipFindings: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range frames {
			if err := a.Feed(f.Timestamp, f.Data); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := a.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndCapture(b *testing.B) {
	cap, err := rtcc.GenerateCapture(rtcc.CaptureConfig{
		App: rtcc.GoogleMeet, Network: rtcc.WiFiRelay, Seed: 9,
		Start: benchStart, CallDuration: 10 * time.Second,
		PrePost: 8 * time.Second, MediaRate: 25, Background: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	frames := cap.Frames()
	bytes := 0
	for _, f := range frames {
		bytes += len(f.Data)
	}
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtcc.Analyze(cap, rtcc.Options{SkipFindings: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkDPI_BaselineComparison contrasts the paper's custom DPI with
// a conventional strict classifier (nDPI/Peafowl style: offset-zero
// matching, static payload-type whitelist). The metrics quantify §4.1's
// motivation: the share of real protocol messages a conventional engine
// misses entirely.
func BenchmarkDPI_BaselineComparison(b *testing.B) {
	caps := matrixCaptures(b)
	tables := decodedStreams(b)
	var streams [][][]byte
	for j, table := range tables {
		res := filterpipe.Run(table, filterpipe.Config{
			CallStart: caps[j].CallStart, CallEnd: caps[j].CallEnd,
		})
		for _, s := range res.RTC {
			if s.Key.Proto != layers.IPProtocolUDP {
				continue
			}
			payloads := make([][]byte, len(s.Packets))
			for k, p := range s.Packets {
				payloads[k] = p.Payload
			}
			streams = append(streams, payloads)
		}
	}

	custom := dpi.NewEngine()
	customMsgs := 0
	for _, payloads := range streams {
		for _, r := range custom.InspectStream(payloads) {
			customMsgs += len(r.Messages)
		}
	}

	b.Run("strict-baseline", func(b *testing.B) {
		e := dpi.StrictEngine{}
		msgs := 0
		for i := 0; i < b.N; i++ {
			msgs = 0
			for _, payloads := range streams {
				for _, r := range e.InspectStream(payloads) {
					msgs += len(r.Messages)
				}
			}
		}
		b.ReportMetric(float64(msgs), "messages")
		b.ReportMetric(100*float64(msgs)/float64(maxInt(customMsgs, 1)), "recall_vs_custom_%")
	})
	b.Run("custom", func(b *testing.B) {
		msgs := 0
		for i := 0; i < b.N; i++ {
			msgs = 0
			for _, payloads := range streams {
				for _, r := range custom.InspectStream(payloads) {
					msgs += len(r.Messages)
				}
			}
		}
		b.ReportMetric(float64(msgs), "messages")
	})
	b.Run("custom-adaptive", func(b *testing.B) {
		e := &dpi.Engine{MaxOffset: 200, Adaptive: true}
		msgs := 0
		for i := 0; i < b.N; i++ {
			msgs = 0
			for _, payloads := range streams {
				for _, r := range e.InspectStream(payloads) {
					msgs += len(r.Messages)
				}
			}
		}
		b.ReportMetric(float64(msgs), "messages")
		b.ReportMetric(100*float64(msgs)/float64(maxInt(customMsgs, 1)), "recall_vs_custom_%")
	})
}

// BenchmarkFilter_StageAblation isolates the contribution of each
// filtering stage (§3.2): how many background streams stage 1's
// timespan rule removes on its own, and how many survive it only to be
// caught by each stage-2 heuristic. Metrics quantify why both stages
// are needed.
func BenchmarkFilter_StageAblation(b *testing.B) {
	caps := matrixCaptures(b)
	tables := decodedStreams(b)
	var stage1, byRule3Tuple, bySNI, byLocalIP, byPort int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stage1, byRule3Tuple, bySNI, byLocalIP, byPort = 0, 0, 0, 0, 0
		for j, table := range tables {
			res := filterpipe.Run(table, filterpipe.Config{
				CallStart: caps[j].CallStart,
				CallEnd:   caps[j].CallEnd,
			})
			for _, rm := range res.Removed {
				switch rm.Rule {
				case filterpipe.RuleTimespan:
					stage1++
				case filterpipe.RuleThreeTuple:
					byRule3Tuple++
				case filterpipe.RuleSNI:
					bySNI++
				case filterpipe.RuleLocalIP:
					byLocalIP++
				case filterpipe.RulePort:
					byPort++
				}
			}
		}
	}
	b.ReportMetric(float64(stage1), "stage1_timespan")
	b.ReportMetric(float64(byRule3Tuple), "stage2_3tuple")
	b.ReportMetric(float64(bySNI), "stage2_sni")
	b.ReportMetric(float64(byLocalIP), "stage2_localip")
	b.ReportMetric(float64(byPort), "stage2_port")
}

// BenchmarkHotPath runs the internal/bench scenario matrix — every
// ingestion mode (per-packet Feed, pooled FeedBatch, buffered batch)
// over the relay, P2P, and media-heavy cells. The same harness backs
// `make bench-json` and the CI regression gate, so these numbers and
// the committed BENCH_hotpath.json baseline measure identical code.
// The pkts/s metric counts only time inside the ingestion loop
// (analyzer construction and Close are untimed in the harness but
// inside b.N here, so ns/op reads higher than the JSON's ingest-only
// ns_per_op).
func BenchmarkHotPath(b *testing.B) {
	for _, sc := range bench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			p, err := bench.Prepare(sc)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(p.Bytes)
			b.ResetTimer()
			var ingest time.Duration
			for i := 0; i < b.N; i++ {
				d, err := p.RunOnce()
				if err != nil {
					b.Fatal(err)
				}
				ingest += d
			}
			b.ReportMetric(float64(p.Packets)*float64(b.N)/ingest.Seconds(), "pkts/s")
		})
	}
}
