// Package stun implements the STUN and TURN wire formats.
//
// STUN (RFC 3489 classic, RFC 5389, RFC 8489) and TURN (RFC 5766,
// RFC 8656) share one message format: a 20-byte header followed by
// TLV-encoded attributes padded to 4-byte boundaries. TURN additionally
// defines the ChannelData framing. This package provides:
//
//   - Decode/Encode for STUN messages, including the RFC 3489 "classic"
//     variant that predates the magic cookie;
//   - typed helpers for the attributes the compliance rules inspect
//     (XOR-MAPPED-ADDRESS, ERROR-CODE, CHANNEL-NUMBER, ...);
//   - the registries of defined message types and attribute types per
//     RFC revision (registry.go), which the compliance checker consults;
//   - ChannelData framing.
//
// Decoding is deliberately permissive about *which* types and attribute
// values appear — the paper's methodology (§4.1.1) requires parsing
// non-compliant messages (undefined types like 0x0801, undefined
// attributes like 0x4003) so that the compliance layer can judge them.
// Structural integrity (lengths, padding, bounds) is still enforced.
package stun

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/rtc-compliance/rtcc/internal/bytesutil"
)

// MagicCookie is the fixed value in the second header word (RFC 5389 §6).
const MagicCookie uint32 = 0x2112A442

// HeaderLen is the fixed STUN header size.
const HeaderLen = 20

// MessageType is the 14-bit STUN message type (class + method packed per
// RFC 5389 §6). Values with either of the two most significant bits set
// are not STUN messages.
type MessageType uint16

// Class is the 2-bit STUN message class.
type Class uint8

// Message classes.
const (
	ClassRequest    Class = 0b00
	ClassIndication Class = 0b01
	ClassSuccess    Class = 0b10
	ClassError      Class = 0b11
)

func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassIndication:
		return "indication"
	case ClassSuccess:
		return "success response"
	case ClassError:
		return "error response"
	}
	return "unknown"
}

// Method is the 12-bit STUN method.
type Method uint16

// Methods defined across STUN/TURN RFCs.
const (
	MethodBinding           Method = 0x001 // RFC 5389
	MethodSharedSecret      Method = 0x002 // RFC 3489 (deprecated by 5389)
	MethodAllocate          Method = 0x003 // RFC 5766
	MethodRefresh           Method = 0x004 // RFC 5766
	MethodSend              Method = 0x006 // RFC 5766
	MethodData              Method = 0x007 // RFC 5766
	MethodCreatePermission  Method = 0x008 // RFC 5766
	MethodChannelBind       Method = 0x009 // RFC 5766
	MethodConnect           Method = 0x00a // RFC 6062
	MethodConnectionBind    Method = 0x00b // RFC 6062
	MethodConnectionAttempt Method = 0x00c // RFC 6062
	MethodGoogPing          Method = 0x080 // provisional registry expansion
)

// MessageTypeOf packs a method and class into a message type.
func MessageTypeOf(m Method, c Class) MessageType {
	// Method bits M11..M0 interleave with class bits C1,C0 as:
	// M11..M7 | C1 | M6..M4 | C0 | M3..M0
	mm := uint16(m)
	cc := uint16(c)
	return MessageType((mm&0x0f80)<<2 | (cc&0b10)<<7 | (mm&0x0070)<<1 | (cc&0b01)<<4 | mm&0x000f)
}

// Method extracts the 12-bit method.
func (t MessageType) Method() Method {
	v := uint16(t)
	return Method((v&0x3e00)>>2 | (v&0x00e0)>>1 | v&0x000f)
}

// Class extracts the 2-bit class.
func (t MessageType) Class() Class {
	v := uint16(t)
	return Class((v&0x0100)>>7 | (v&0x0010)>>4)
}

// Common full message types.
const (
	TypeBindingRequest         = MessageType(0x0001)
	TypeBindingIndication      = MessageType(0x0011)
	TypeBindingSuccess         = MessageType(0x0101)
	TypeBindingError           = MessageType(0x0111)
	TypeSharedSecretRequest    = MessageType(0x0002)
	TypeAllocateRequest        = MessageType(0x0003)
	TypeAllocateSuccess        = MessageType(0x0103)
	TypeAllocateError          = MessageType(0x0113)
	TypeRefreshRequest         = MessageType(0x0004)
	TypeRefreshSuccess         = MessageType(0x0104)
	TypeSendIndication         = MessageType(0x0016)
	TypeDataIndication         = MessageType(0x0017)
	TypeCreatePermissionReq    = MessageType(0x0008)
	TypeCreatePermissionOK     = MessageType(0x0108)
	TypeCreatePermissionErr    = MessageType(0x0118)
	TypeChannelBindRequest     = MessageType(0x0009)
	TypeChannelBindSuccess     = MessageType(0x0109)
	TypeConnectRequest         = MessageType(0x000a)
	TypeConnectionAttemptIndic = MessageType(0x001c)
)

func (t MessageType) String() string {
	if name, ok := messageTypeNames[t]; ok {
		return fmt.Sprintf("%s (0x%04x)", name, uint16(t))
	}
	return fmt.Sprintf("0x%04x", uint16(t))
}

// AttrType is a 16-bit STUN attribute type.
type AttrType uint16

// Attribute types referenced by the codec, generators, and compliance
// rules. The full defined-set lives in registry.go.
const (
	AttrMappedAddress     AttrType = 0x0001
	AttrResponseAddress   AttrType = 0x0002
	AttrChangeRequest     AttrType = 0x0003
	AttrSourceAddress     AttrType = 0x0004
	AttrChangedAddress    AttrType = 0x0005
	AttrUsername          AttrType = 0x0006
	AttrPassword          AttrType = 0x0007
	AttrMessageIntegrity  AttrType = 0x0008
	AttrErrorCode         AttrType = 0x0009
	AttrUnknownAttributes AttrType = 0x000a
	AttrReflectedFrom     AttrType = 0x000b
	AttrChannelNumber     AttrType = 0x000c
	AttrLifetime          AttrType = 0x000d
	AttrXORPeerAddress    AttrType = 0x0012
	AttrData              AttrType = 0x0013
	AttrRealm             AttrType = 0x0014
	AttrNonce             AttrType = 0x0015
	AttrXORRelayedAddress AttrType = 0x0016
	AttrRequestedFamily   AttrType = 0x0017
	AttrEvenPort          AttrType = 0x0018
	AttrRequestedTranspt  AttrType = 0x0019
	AttrDontFragment      AttrType = 0x001a
	AttrXORMappedAddress  AttrType = 0x0020
	AttrReservationToken  AttrType = 0x0022
	AttrPriority          AttrType = 0x0024
	AttrUseCandidate      AttrType = 0x0025
	AttrPadding           AttrType = 0x0026
	AttrResponsePort      AttrType = 0x0027
	AttrSoftware          AttrType = 0x8022
	AttrAlternateServer   AttrType = 0x8023
	AttrFingerprint       AttrType = 0x8028
	AttrICEControlled     AttrType = 0x8029
	AttrICEControlling    AttrType = 0x802a
	AttrResponseOrigin    AttrType = 0x802b
	AttrOtherAddress      AttrType = 0x802c
	AttrGoogNetworkInfo   AttrType = 0xc057
)

func (a AttrType) String() string {
	if name, ok := attrTypeNames[a]; ok {
		return fmt.Sprintf("%s (0x%04x)", name, uint16(a))
	}
	return fmt.Sprintf("0x%04x", uint16(a))
}

// Attribute is one TLV-encoded attribute. Value holds the unpadded value
// bytes; DeclaredLen preserves the on-wire length field.
type Attribute struct {
	Type        AttrType
	Value       []byte
	DeclaredLen uint16
}

// Message is one decoded STUN/TURN message.
type Message struct {
	Type MessageType
	// Length is the declared attribute-region length from the header.
	Length uint16
	// Classic is true when the message was encoded/decoded in RFC 3489
	// mode: the magic-cookie word is part of a 128-bit transaction ID.
	Classic bool
	// CookieWord holds the raw second header word. Equal to MagicCookie
	// for RFC 5389+ messages; for classic messages it is the first word
	// of the 128-bit transaction ID.
	CookieWord uint32
	// TransactionID is the 96-bit transaction ID (RFC 5389+). Classic
	// 128-bit IDs are CookieWord ++ TransactionID.
	TransactionID [12]byte
	Attributes    []Attribute
	// Raw is the full encoded message (header + attributes), set by
	// Decode; Encode regenerates it.
	Raw []byte
}

// Decoding errors.
var (
	ErrNotSTUN      = errors.New("stun: not a STUN message")
	ErrTruncated    = errors.New("stun: truncated message")
	ErrBadAttribute = errors.New("stun: malformed attribute")
)

// LooksLikeHeader reports whether b begins with a plausible STUN header:
// top two bits zero and a length field that is a multiple of 4 and fits
// within b. This is the DPI candidate pattern (restrictions on message
// type removed per §4.1.1).
func LooksLikeHeader(b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	if b[0]&0xc0 != 0 {
		return false
	}
	length := binary.BigEndian.Uint16(b[2:4])
	if length%4 != 0 {
		return false
	}
	return int(length) <= len(b)-HeaderLen
}

// Decode parses one STUN message from the start of b. Trailing bytes
// beyond the declared length are ignored (callers use DecodedLen).
// Messages whose cookie word differs from MagicCookie are decoded in
// classic (RFC 3489) mode.
func Decode(b []byte) (*Message, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0]&0xc0 != 0 {
		return nil, fmt.Errorf("%w: first byte %#02x", ErrNotSTUN, b[0])
	}
	r := bytesutil.NewReader(b)
	m := &Message{
		Type:   MessageType(r.Uint16()),
		Length: r.Uint16(),
	}
	m.CookieWord = r.Uint32()
	m.Classic = m.CookieWord != MagicCookie
	copy(m.TransactionID[:], r.Bytes(12))
	if int(m.Length) > len(b)-HeaderLen {
		return nil, fmt.Errorf("%w: declared length %d exceeds %d available", ErrTruncated, m.Length, len(b)-HeaderLen)
	}
	attrRegion := b[HeaderLen : HeaderLen+int(m.Length)]
	ar := bytesutil.NewReader(attrRegion)
	for ar.Remaining() >= 4 {
		at := AttrType(ar.Uint16())
		al := ar.Uint16()
		padded := (int(al) + 3) &^ 3
		if ar.Remaining() < padded {
			// The value (with padding) exceeds the declared message
			// length: structurally malformed.
			return nil, fmt.Errorf("%w: attribute %v declares %d bytes with %d remaining", ErrBadAttribute, at, al, ar.Remaining())
		}
		val := ar.BytesCopy(int(al))
		ar.Skip(padded - int(al))
		m.Attributes = append(m.Attributes, Attribute{Type: at, Value: val, DeclaredLen: al})
	}
	if ar.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in attribute region", ErrBadAttribute, ar.Remaining())
	}
	m.Raw = b[:HeaderLen+int(m.Length)]
	return m, nil
}

// DecodedLen reports the total encoded size of the message (header plus
// declared attribute region).
func (m *Message) DecodedLen() int { return HeaderLen + int(m.Length) }

// Get returns the first attribute of the given type, or nil.
func (m *Message) Get(t AttrType) *Attribute {
	for i := range m.Attributes {
		if m.Attributes[i].Type == t {
			return &m.Attributes[i]
		}
	}
	return nil
}

// Add appends an attribute with the given value.
func (m *Message) Add(t AttrType, value []byte) {
	m.Attributes = append(m.Attributes, Attribute{Type: t, Value: value, DeclaredLen: uint16(len(value))})
}

// Encode serializes the message. The Length header field is recomputed
// from the attributes; CookieWord is emitted verbatim for classic
// messages and forced to MagicCookie otherwise.
func (m *Message) Encode() []byte {
	w := bytesutil.NewWriter(HeaderLen + 64)
	w.Uint16(uint16(m.Type))
	w.Uint16(0) // patched below
	cookie := m.CookieWord
	if !m.Classic {
		cookie = MagicCookie
	}
	w.Uint32(cookie)
	w.Write(m.TransactionID[:])
	for _, a := range m.Attributes {
		w.Uint16(uint16(a.Type))
		w.Uint16(uint16(len(a.Value)))
		w.Write(a.Value)
		w.Pad(4)
	}
	w.SetUint16(2, uint16(w.Len()-HeaderLen))
	m.Length = uint16(w.Len() - HeaderLen)
	m.Raw = w.Bytes()
	return m.Raw
}

// ChannelData is a TURN ChannelData frame (RFC 8656 §12.4).
type ChannelData struct {
	ChannelNumber uint16
	Data          []byte
}

// ChannelNumber validity ranges. RFC 5766 allowed 0x4000-0x7FFF;
// RFC 8656 narrowed the usable range to 0x4000-0x4FFF.
const (
	ChannelMin     = 0x4000
	ChannelMax5766 = 0x7FFF
	ChannelMax8656 = 0x4FFF
)

// LooksLikeChannelData reports whether b plausibly begins with a TURN
// ChannelData frame: channel number in the 0x4000-0x7FFF range and a
// length that fits the buffer.
func LooksLikeChannelData(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	ch := binary.BigEndian.Uint16(b[0:2])
	if ch < ChannelMin || ch > ChannelMax5766 {
		return false
	}
	length := binary.BigEndian.Uint16(b[2:4])
	return int(length) <= len(b)-4
}

// DecodeChannelData parses a ChannelData frame from the start of b.
func DecodeChannelData(b []byte) (*ChannelData, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: channeldata header", ErrTruncated)
	}
	ch := binary.BigEndian.Uint16(b[0:2])
	if ch < ChannelMin || ch > ChannelMax5766 {
		return nil, fmt.Errorf("%w: channel number %#04x", ErrNotSTUN, ch)
	}
	length := binary.BigEndian.Uint16(b[2:4])
	if int(length) > len(b)-4 {
		return nil, fmt.Errorf("%w: channeldata length %d exceeds %d", ErrTruncated, length, len(b)-4)
	}
	data := make([]byte, length)
	copy(data, b[4:4+length])
	return &ChannelData{ChannelNumber: ch, Data: data}, nil
}

// Encode serializes the ChannelData frame (no padding; UDP transport).
func (c *ChannelData) Encode() []byte {
	w := bytesutil.NewWriter(4 + len(c.Data))
	w.Uint16(c.ChannelNumber)
	w.Uint16(uint16(len(c.Data)))
	w.Write(c.Data)
	return w.Bytes()
}

// DecodedLen reports the encoded frame size.
func (c *ChannelData) DecodedLen() int { return 4 + len(c.Data) }
