package dpi

import (
	"github.com/rtc-compliance/rtcc/internal/metrics"
	"github.com/rtc-compliance/rtcc/internal/proto"
)

// engineMetrics holds the resolved instrument handles for one
// InspectStream run. The zero value (nil registry) is inert: every
// handle is a no-op, so the per-datagram cost of disabled metrics is a
// handful of nil-receiver branches.
//
// The counters are handles into sharded counters: every stream
// inspector increments a private cache-line-padded cell, and the
// registry folds the cells at snapshot time. With dozens of workers
// finalizing streams concurrently, plain atomic counters would
// serialise them all on a handful of cache lines.
type engineMetrics struct {
	// classes is indexed by Class.
	classes [3]metrics.CounterHandle
	// messages is indexed by Protocol (unregistered IDs stay inert).
	messages [proto.MaxIDs]metrics.CounterHandle
	attempts metrics.CounterHandle
	latency  *metrics.Histogram
}

func (e *Engine) metricsHandles() engineMetrics {
	r := e.Metrics
	if r == nil {
		return engineMetrics{}
	}
	var m engineMetrics
	m.classes[ClassFullyProprietary] = r.Sharded("dpi_datagrams_total", metrics.L("class", "fully_proprietary")).Handle()
	m.classes[ClassStandard] = r.Sharded("dpi_datagrams_total", metrics.L("class", "standard")).Handle()
	m.classes[ClassProprietaryHeader] = r.Sharded("dpi_datagrams_total", metrics.L("class", "proprietary_header")).Handle()
	for _, meta := range e.registry().Metas() {
		m.messages[meta.ID] = r.Sharded("dpi_messages_total", metrics.L("proto", meta.Slug)).Handle()
	}
	m.attempts = r.Sharded("dpi_offset_shift_attempts_total").Handle()
	m.latency = r.Histogram("dpi_inspect_seconds", nil)
	return m
}
