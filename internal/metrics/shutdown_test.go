package metrics

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShutdownGraceful verifies that Shutdown waits for an in-flight
// scrape to complete instead of cutting it off the way Close does.
func TestShutdownGraceful(t *testing.T) {
	r := NewRegistry()
	r.Counter("y").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	// Hold a connection with an unfinished request so Shutdown has an
	// in-flight scrape to wait for.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Read the response fully; the request completes, the connection
	// goes idle, and graceful shutdown can finish.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	// The listener must be released.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

// TestShutdownDeadline verifies the hard-close fallback: a connection
// that never finishes its request must not hold Shutdown past the
// context deadline.
func TestShutdownDeadline(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request keeps the connection active from the server's
	// point of view.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a hung connection")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v, deadline fallback did not fire", elapsed)
	}
}

// TestShutdownDefaultDeadline pins that a context without a deadline
// gets DefaultShutdownTimeout instead of hanging forever.
func TestShutdownDefaultDeadline(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown with background context: %v", err)
	}
}

// TestBuildInfoExpvar verifies Serve publishes the build_info expvar
// with the expected keys, and that a second Serve does not panic on
// the duplicate.
func TestBuildInfoExpvar(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["build_info"]
	if !ok {
		t.Fatalf("build_info missing from /debug/vars (keys: %v)", keysOf(vars))
	}
	var info map[string]string
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatalf("build_info not a string map: %v", err)
	}
	for _, key := range []string{"version", "revision", "time", "go"} {
		if _, ok := info[key]; !ok {
			t.Errorf("build_info missing key %q: %v", key, info)
		}
	}
	if !strings.HasPrefix(info["go"], "go") {
		t.Errorf("build_info go = %q, want a toolchain version", info["go"])
	}

	// Second Serve in the same process must reuse the published var.
	srv2, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
