package cmdutil

import (
	"flag"
	"strings"
	"testing"
)

func TestExplicit(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	WorkersFlag(fs)
	ShardsFlag(fs)
	MetricsAddrFlag(fs)
	if err := fs.Parse([]string{"-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	set := Explicit(fs)
	if !set["shards"] {
		t.Fatal("shards was set explicitly")
	}
	if set["workers"] || set["metrics-addr"] {
		t.Fatalf("defaulted flags must not report explicit: %v", set)
	}
}

func TestFlagSurfaceSortedAndComplete(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ShardsFlag(fs)
	ConfigFlag(fs)
	VersionFlag(fs)
	got := FlagSurface(fs)
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), got)
	}
	for i, prefix := range []string{"config\t", "shards\t", "version\t"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q (sorted by name)", i, lines[i], prefix)
		}
	}
	if !strings.Contains(lines[1], `"1"`) {
		t.Fatalf("shards line must carry its default: %q", lines[1])
	}
}
