// Package cmdutil holds the small pieces shared by every cmd/ binary:
// the -version output and the metrics endpoint lifecycle with a
// graceful signal path.
package cmdutil

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/rtc-compliance/rtcc/internal/buildinfo"
	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// PrintVersion writes the binary's build identity — the output of the
// -version flag every binary carries, matching the build_info expvar
// the metrics server publishes.
func PrintVersion(w io.Writer, binary string) {
	buildinfo.Print(w, binary)
}

// ServeMetrics starts the observability endpoint when addr is
// non-empty, returning the registry (nil when disabled) and a stop
// function for the normal exit path. While the server runs, SIGINT and
// SIGTERM drain it gracefully (Server.Shutdown with its default
// deadline) before the process exits with the conventional 128+signal
// status, so an in-flight scrape or pprof download is not cut off
// mid-body.
func ServeMetrics(binary, addr string) (*metrics.Registry, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	reg := metrics.NewRegistry()
	srv, err := metrics.Serve(addr, reg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return // stop() ran: the normal exit path owns the server now
		}
		fmt.Fprintf(os.Stderr, "%s: %v: draining metrics server\n", binary, sig)
		srv.Shutdown(context.Background()) //nolint:errcheck // falls back to hard close internally
		code := 130                        // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
	stop := func() {
		signal.Stop(sigc)
		close(sigc)
		srv.Shutdown(context.Background()) //nolint:errcheck // falls back to hard close internally
	}
	return reg, stop, nil
}
