package rtcp

import "testing"

// FuzzDecodeCompound checks panic-freedom and span accounting for the
// compound walker.
func FuzzDecodeCompound(f *testing.F) {
	f.Add(EncodeSR(&SenderReport{SSRC: 1, Info: SenderInfo{NTPTimestamp: 1}}))
	f.Add(Compound(
		EncodeRR(&ReceiverReport{SSRC: 2}),
		EncodeBye(&Bye{SSRCs: []uint32{2}}),
	))

	// Corpus entries mirroring the deviant RTCP trailer shapes the
	// appsim emulators emit (§5.2/§5.3): Meet's SRTCP with only the
	// 4-byte E-flag+index (auth tag missing), a full 14-byte SRTCP
	// trailer, and Discord's single direction-correlated trailer byte.
	meet := Compound(
		EncodeSR(&SenderReport{SSRC: 0x1000C01, Info: SenderInfo{NTPTimestamp: 2}}),
		EncodeSDES(&SDES{Chunks: []SDESChunk{{SSRC: 0x1000C01, Items: []SDESItem{{Type: SDESCNAME, Text: "a@b"}}}}}),
	)
	f.Add(append(append([]byte(nil), meet...), 0x80, 0x00, 0x00, 0x2a))
	full := EncodeFeedback(TypeRTPFB, &Feedback{FMT: 1, SenderSSRC: 3, MediaSSRC: 4, FCI: []byte{0, 1, 0, 0}})
	trailer := make([]byte, 14)
	trailer[0] = 0x80
	f.Add(append(append([]byte(nil), full...), trailer...))
	discord := EncodeFeedback(TypePSFB, &Feedback{FMT: 15, SenderSSRC: 0, MediaSSRC: 5})
	f.Add(append(append([]byte(nil), discord...), 0x02))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, trailing, err := DecodeCompound(data)
		if err != nil {
			return
		}
		total := len(trailing)
		for _, p := range pkts {
			if p.Header.ByteLen() != len(p.Raw) {
				t.Fatal("raw length disagrees with header")
			}
			total += p.Header.ByteLen()
		}
		if total != len(data) {
			t.Fatalf("span accounting: %d != %d", total, len(data))
		}
	})
}
