package tlsinspect

import (
	"bytes"
	"errors"
	"testing"
)

func TestDTLSRecordRoundTrip(t *testing.T) {
	frag := bytes.Repeat([]byte{0xAB}, 33)
	raw := BuildDTLSRecord(DTLSTypeHandshake, VersionDTLS12, 2, 0x112233445566, frag)
	r, n, err := ParseDTLSRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d, want %d", n, len(raw))
	}
	if r.ContentType != DTLSTypeHandshake || r.Version != VersionDTLS12 ||
		r.Epoch != 2 || r.SequenceNumber != 0x112233445566 {
		t.Errorf("header fields did not round-trip: %+v", r)
	}
	if !bytes.Equal(r.Fragment, frag) {
		t.Errorf("fragment did not round-trip")
	}
}

func TestDTLSHandshakeRoundTrip(t *testing.T) {
	var random [32]byte
	for i := range random {
		random[i] = byte(i)
	}
	body := BuildDTLSClientHelloBody(random, []byte{1, 2, 3})
	raw := BuildDTLSHandshake(DTLSHandshakeClientHello, 7, body)
	h, err := ParseDTLSHandshake(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != DTLSHandshakeClientHello || h.MessageSeq != 7 ||
		h.FragmentOffset != 0 || h.FragmentLength != len(body) || h.Length != len(body) {
		t.Errorf("handshake header did not round-trip: %+v", h)
	}
	if !bytes.Equal(h.Body, body) {
		t.Errorf("handshake body did not round-trip")
	}
}

func TestDTLSRecordsWalksChain(t *testing.T) {
	a := BuildDTLSRecord(DTLSTypeChangeCipherSpec, VersionDTLS12, 0, 5, []byte{1})
	b := BuildDTLSRecord(DTLSTypeHandshake, VersionDTLS12, 1, 6, bytes.Repeat([]byte{0x7f}, 40))
	chain := append(append([]byte(nil), a...), b...)
	recs, n, err := ParseDTLSRecords(chain)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(chain) || len(recs) != 2 {
		t.Fatalf("walk consumed %d bytes into %d records, want %d bytes / 2 records", n, len(recs), len(chain))
	}
	if recs[0].ContentType != DTLSTypeChangeCipherSpec || recs[1].Epoch != 1 {
		t.Errorf("records out of order: %+v", recs)
	}
	// The walk stops at the first non-record byte and reports partial
	// consumption rather than an error.
	trailing := append(append([]byte(nil), chain...), 0xff, 0xff)
	recs, n, err = ParseDTLSRecords(trailing)
	if err != nil || len(recs) != 2 || n != len(chain) {
		t.Errorf("partial walk = %d records, %d bytes, %v; want 2, %d, nil", len(recs), n, err, len(chain))
	}
}

func TestDTLSRecordRejects(t *testing.T) {
	frag := []byte{1}
	good := BuildDTLSRecord(DTLSTypeAlert, VersionDTLS10, 0, 1, frag)
	cases := map[string][]byte{
		"truncated header":   good[:DTLSRecordHeaderLen-1],
		"truncated fragment": good[:len(good)-1],
		"bad content type":   append([]byte{0x40}, good[1:]...),
		"bad version":        append([]byte{good[0], 0x03, 0x03}, good[3:]...),
		"zero length":        BuildDTLSRecord(DTLSTypeAlert, VersionDTLS10, 0, 1, nil),
	}
	for name, raw := range cases {
		if _, _, err := ParseDTLSRecord(raw); err == nil {
			t.Errorf("%s: parse accepted %x", name, raw)
		}
	}
	if _, _, err := ParseDTLSRecords([]byte{0xff}); !errors.Is(err, ErrNotDTLS) && !errors.Is(err, ErrTruncated) {
		t.Errorf("chain on junk = %v, want ErrNotDTLS or ErrTruncated", err)
	}
}

func TestDTLSLooksLikeRecordGate(t *testing.T) {
	good := BuildDTLSRecord(DTLSTypeHandshake, VersionDTLS12, 0, 0, []byte{1})
	if !DTLSLooksLikeRecord(good) {
		t.Error("rejects a valid record")
	}
	// RFC 7983 neighbours outside the assigned 20-23 content types.
	for _, b0 := range []byte{19, 24, 63, 0x80} {
		bad := append([]byte{b0}, good[1:]...)
		if DTLSLooksLikeRecord(bad) {
			t.Errorf("accepts content type %d", b0)
		}
	}
	if DTLSLooksLikeRecord(good[:DTLSRecordHeaderLen-1]) {
		t.Error("accepts a short header")
	}
}

func TestDTLSHandshakeRejectsOverlongFragment(t *testing.T) {
	raw := BuildDTLSHandshake(DTLSHandshakeFinished, 0, []byte{1, 2, 3})
	// Declare a fragment longer than the remaining bytes.
	raw[11] = 0xff
	if _, err := ParseDTLSHandshake(raw); err == nil {
		t.Error("parse accepted an overlong fragment length")
	}
	// Fragment range exceeding the declared message length.
	raw2 := BuildDTLSHandshake(DTLSHandshakeFinished, 0, []byte{1, 2, 3})
	raw2[3] = 1 // message length 1 < fragment length 3
	if _, err := ParseDTLSHandshake(raw2); err == nil {
		t.Error("parse accepted fragment exceeding message length")
	}
}
