package natsim

import (
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"github.com/rtc-compliance/rtcc/internal/layers"
	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// Profile is one composable network-impairment profile. Each knob is
// independent; the zero Profile is a transparent pass-through. Impair
// applies the active knobs to a datagram sequence deterministically:
// the same (seed, input) pair always yields the same output, byte for
// byte, which is what lets the differential test matrix pin compliance
// verdicts under impairment.
//
// Impairment models the UDP media path between the device and its
// peer. TCP segments (signaling, background bulk) pass through
// untouched: their transport retransmits below the capture point, so
// loss and reordering there are invisible to an on-device capture.
type Profile struct {
	// Name labels the profile in metrics, fixtures, and manifests.
	Name string

	// Loss is the i.i.d. drop probability in [0, 1) applied in the
	// Gilbert–Elliott good state (or always, when the chain is off).
	Loss float64

	// GoodBad, BadGood, and BadLoss parameterize Gilbert–Elliott burst
	// loss: a two-state chain advances once per UDP datagram, entering
	// the bad state with probability GoodBad and leaving it with
	// probability BadGood; datagrams seen in the bad state drop with
	// probability BadLoss. The chain is enabled when either transition
	// probability is positive.
	GoodBad float64
	BadGood float64
	BadLoss float64

	// Jitter adds an independent uniform queueing delay in [0, Jitter)
	// to each UDP datagram. Reordering is bounded by construction: a
	// datagram can only be overtaken by datagrams sent within Jitter
	// of it.
	Jitter time.Duration

	// Reorder is the probability a datagram takes a late spike on top
	// of its jitter — an extra delay in [1ms, 1ms+ReorderDelay) —
	// displacing it past several successors.
	Reorder float64
	// ReorderDelay bounds the spike; zero selects 8ms.
	ReorderDelay time.Duration

	// Dup is the probability a datagram is delivered twice; the copy
	// shares the original payload bytes and arrives DupDelay later.
	Dup float64
	// DupDelay delays the duplicate; zero selects 2ms.
	DupDelay time.Duration

	// Rebind schedules this many mid-call NAT rebinding events, spread
	// evenly across the input's time span. At each event the NAT in
	// front of RebindAddr allocates fresh external ports, so every UDP
	// flow touching that address continues on a new 5-tuple — the
	// mid-call stream split real mobile networks produce.
	Rebind int
	// RebindAddr is the client whose mapping rebinds. The zero Addr
	// auto-selects the dominant UDP source address (the device).
	RebindAddr netip.Addr
}

// Active reports whether any impairment knob is set.
func (p Profile) Active() bool {
	return p.Loss > 0 || p.GoodBad > 0 || p.BadGood > 0 ||
		p.Jitter > 0 || p.Reorder > 0 || p.Dup > 0 || p.Rebind > 0
}

// Label returns the profile's metrics/fixture label.
func (p Profile) Label() string {
	if p.Name != "" {
		return p.Name
	}
	return "custom"
}

// gilbert reports whether the burst-loss chain is enabled.
func (p Profile) gilbert() bool { return p.GoodBad > 0 || p.BadGood > 0 }

// ImpairStats is the accounting of one Impair run. Out is always
// In - Dropped + Duplicated.
type ImpairStats struct {
	In, Out    int
	Dropped    int
	Duplicated int
	// Reordered counts output datagrams delivered after a datagram
	// that followed them in the input (inversions witnessed left to
	// right).
	Reordered int
	// Rebound counts datagrams whose 5-tuple was rewritten by a NAT
	// rebinding event.
	Rebound int
}

// Publish folds the accounting into per-profile impairment counters.
// A nil registry is a no-op, matching the pipeline's metrics contract.
func (s ImpairStats) Publish(reg *metrics.Registry, profile string) {
	if reg == nil {
		return
	}
	l := metrics.L("profile", profile)
	reg.Counter("natsim_impair_in_total", l).Add(uint64(s.In))
	reg.Counter("natsim_impair_out_total", l).Add(uint64(s.Out))
	reg.Counter("natsim_impair_dropped_total", l).Add(uint64(s.Dropped))
	reg.Counter("natsim_impair_duplicated_total", l).Add(uint64(s.Duplicated))
	reg.Counter("natsim_impair_reordered_total", l).Add(uint64(s.Reordered))
	reg.Counter("natsim_impair_rebound_total", l).Add(uint64(s.Rebound))
}

// Impair applies the profile to a datagram sequence. See
// ImpairWithStats.
func (p Profile) Impair(seed uint64, in []Datagram) []Datagram {
	out, _ := p.ImpairWithStats(seed, in)
	return out
}

// ImpairWithStats applies the profile to a datagram sequence and
// reports the accounting. The input is not modified; output datagrams
// reference the input payload slices — the stage drops, delays,
// duplicates, and re-addresses datagrams but never fabricates or edits
// payload bytes (FuzzImpair enforces this). Output is sorted by
// delivery time, stably, so equal timestamps keep input order and the
// whole transform is a pure function of (profile, seed, input).
func (p Profile) ImpairWithStats(seed uint64, in []Datagram) ([]Datagram, ImpairStats) {
	st := ImpairStats{In: len(in)}
	if len(in) == 0 {
		return nil, st
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x696d70616972)) // "impair"

	rebinds, rebindAddr := p.rebindSchedule(in)

	type tagged struct {
		d   Datagram
		idx int
	}
	tmp := make([]tagged, 0, len(in)+len(in)/16)
	good := true
	for i, d := range in {
		if d.Proto != layers.IPProtocolUDP {
			tmp = append(tmp, tagged{d, i})
			continue
		}
		if p.gilbert() {
			if good {
				good = rng.Float64() >= p.GoodBad
			} else {
				good = rng.Float64() < p.BadGood
			}
		}
		lossP := p.Loss
		if p.gilbert() && !good {
			lossP = p.BadLoss
		}
		if lossP > 0 && rng.Float64() < lossP {
			st.Dropped++
			continue
		}
		if epoch := epochAt(rebinds, d.At); epoch > 0 {
			rebound := false
			if d.Src.Addr() == rebindAddr {
				d.Src = netip.AddrPortFrom(d.Src.Addr(), reboundPort(seed, epoch, d.Src.Port()))
				rebound = true
			}
			if d.Dst.Addr() == rebindAddr {
				d.Dst = netip.AddrPortFrom(d.Dst.Addr(), reboundPort(seed, epoch, d.Dst.Port()))
				rebound = true
			}
			if rebound {
				st.Rebound++
			}
		}
		if p.Jitter > 0 {
			d.At = d.At.Add(time.Duration(rng.Int64N(int64(p.Jitter))))
		}
		if p.Reorder > 0 && rng.Float64() < p.Reorder {
			spike := p.ReorderDelay
			if spike <= 0 {
				spike = 8 * time.Millisecond
			}
			d.At = d.At.Add(time.Millisecond + time.Duration(rng.Int64N(int64(spike))))
		}
		tmp = append(tmp, tagged{d, i})
		if p.Dup > 0 && rng.Float64() < p.Dup {
			dup := d
			delay := p.DupDelay
			if delay <= 0 {
				delay = 2 * time.Millisecond
			}
			dup.At = dup.At.Add(delay)
			tmp = append(tmp, tagged{dup, i})
			st.Duplicated++
		}
	}

	sort.SliceStable(tmp, func(a, b int) bool { return tmp[a].d.At.Before(tmp[b].d.At) })
	out := make([]Datagram, 0, len(tmp))
	maxIdx := -1
	for _, t := range tmp {
		if t.idx < maxIdx {
			st.Reordered++
		} else {
			maxIdx = t.idx
		}
		out = append(out, t.d)
	}
	st.Out = len(out)
	return out, st
}

// rebindSchedule spreads the configured rebind events across the
// input's time span and resolves the rebinding address.
func (p Profile) rebindSchedule(in []Datagram) ([]time.Time, netip.Addr) {
	if p.Rebind <= 0 {
		return nil, netip.Addr{}
	}
	first, last := in[0].At, in[0].At
	for _, d := range in {
		if d.At.Before(first) {
			first = d.At
		}
		if d.At.After(last) {
			last = d.At
		}
	}
	span := last.Sub(first)
	times := make([]time.Time, 0, p.Rebind)
	for i := 0; i < p.Rebind; i++ {
		times = append(times, first.Add(span*time.Duration(i+1)/time.Duration(p.Rebind+1)))
	}
	addr := p.RebindAddr
	if !addr.IsValid() {
		addr = dominantUDPSource(in)
	}
	return times, addr
}

// epochAt counts the rebind events at or before t.
func epochAt(rebinds []time.Time, t time.Time) int {
	epoch := 0
	for _, rt := range rebinds {
		if !t.Before(rt) {
			epoch++
		}
	}
	return epoch
}

// reboundPort derives the fresh external port a NAT allocates for one
// internal port after the given rebind epoch. The FNV-style mix makes
// the mapping deterministic and independent of the order flows are
// encountered; the 20000–39999 range stays clear of the simulators'
// media, relay, and ephemeral port choices.
func reboundPort(seed uint64, epoch int, port uint16) uint16 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{seed, uint64(epoch), uint64(port)} {
		h ^= v
		h *= 1099511628211
	}
	return uint16(20000 + h%20000)
}

// dominantUDPSource returns the most frequent UDP source address —
// the capture device, in an on-device capture. Ties break toward the
// lower address so the choice never depends on map iteration order.
func dominantUDPSource(in []Datagram) netip.Addr {
	counts := make(map[netip.Addr]int)
	var best netip.Addr
	bestN := 0
	for _, d := range in {
		if d.Proto != layers.IPProtocolUDP {
			continue
		}
		a := d.Src.Addr()
		counts[a]++
		if counts[a] > bestN || (counts[a] == bestN && best.IsValid() && a.Compare(best) < 0) {
			best, bestN = a, counts[a]
		}
	}
	return best
}

// StandardProfiles lists the named impairment profiles the matrix
// suites and rtcgen -impair use: a clean reference plus five adverse
// profiles covering every knob.
func StandardProfiles() []Profile {
	return []Profile{
		{Name: "clean"},
		{Name: "loss2", Loss: 0.02},
		// ≈9% of time in the bad state at 50% drop ≈ 5% burst loss.
		{Name: "burst5", GoodBad: 0.03, BadGood: 0.3, BadLoss: 0.5},
		{Name: "jitter30", Jitter: 30 * time.Millisecond, Reorder: 0.05},
		{Name: "dup3", Dup: 0.03, Jitter: 2 * time.Millisecond},
		{Name: "rebind2", Rebind: 2, Jitter: time.Millisecond},
	}
}

// AdverseProfiles lists the standard profiles that actually impair
// (everything but clean).
func AdverseProfiles() []Profile {
	all := StandardProfiles()
	out := all[:0]
	for _, p := range all {
		if p.Active() {
			out = append(out, p)
		}
	}
	return out
}

// ProfileByName resolves a standard profile by name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range StandardProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
