package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/rtc-compliance/rtcc/internal/metrics"
)

// collect is a minimal in-order sink for tests.
type collect struct{ events []Event }

func (c *collect) Emit(ev Event) { c.events = append(c.events, ev) }

func TestSpanIDStable(t *testing.T) {
	a := SpanID("Zoom", "udp 10.0.0.1:1 <-> 10.0.0.2:2")
	b := SpanID("Zoom", "udp 10.0.0.1:1 <-> 10.0.0.2:2")
	if a != b {
		t.Fatalf("SpanID not deterministic: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("SpanID length = %d, want 16 hex digits", len(a))
	}
	if a == SpanID("Zoom", "") {
		t.Fatal("stream span collides with capture span")
	}
	if SpanID("a", "bc") == SpanID("ab", "c") {
		t.Fatal("label/stream boundary not separated")
	}
}

func TestNilPipelineNoops(t *testing.T) {
	var p *Pipeline
	if got := New(nil, "x", Sampling{}, nil); got != nil {
		t.Fatalf("New(nil tracer) = %v, want nil", got)
	}
	// All of these must be safe on nil receivers.
	p.StreamAdmitted("s")
	p.StreamFiltered("s", 1, "r", "")
	p.StreamEvicted("s")
	p.StreamReclassified("s", 2, "r")
	p.FindingEmitted("k", "d")
	p.CaptureEnd("done")
	sp := p.StreamSpan("s")
	if sp != nil {
		t.Fatalf("nil pipeline StreamSpan = %v, want nil", sp)
	}
	sp.BeginDatagram()
	sp.Probe(0, 0x16, "DTLS", OutcomeMatch)
	sp.Extraction("standard", 1)
	sp.Verdict(1, time.Time{}, "DTLS", "handshake", 2, "bad", 0, nil)
	sp.Flush()
}

func TestPipelineCaptureEvents(t *testing.T) {
	var c collect
	p := New(&c, "Zoom", Sampling{}, nil)
	p.StreamAdmitted("s1")
	p.StreamFiltered("s2", 1, "too-few-packets", "3 < 10")
	p.FindingEmitted("filler-messages", "66 observed")
	p.CaptureEnd("10 frames, 0 decode errors")

	kinds := []Kind{KindCaptureBegin, KindStreamAdmitted, KindStreamFiltered, KindFindingEmitted, KindCaptureEnd}
	if len(c.events) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(c.events), len(kinds))
	}
	span := SpanID("Zoom", "")
	for i, ev := range c.events {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, kinds[i])
		}
		if ev.Span != span {
			t.Errorf("event %d span = %s, want capture span %s", i, ev.Span, span)
		}
		if ev.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i)
		}
	}
	if c.events[2].Rule != "too-few-packets" || c.events[2].Stage != 1 {
		t.Errorf("filtered event rule/stage = %q/%d", c.events[2].Rule, c.events[2].Stage)
	}
	if Lint(c.events) != nil {
		t.Errorf("lint problems on clean capture trace: %v", Lint(c.events))
	}
}

func TestSpanSamplingHeadTail(t *testing.T) {
	var c collect
	p := New(&c, "app", Sampling{Head: 4, Tail: 2}, nil)
	sp := p.StreamSpan("st")
	sp.BeginDatagram()
	for i := 0; i < 10; i++ {
		sp.Probe(i, byte(i), "", OutcomeShift)
	}
	sp.Flush()

	var seqs []uint64
	dropped := 0
	for _, ev := range c.events {
		if ev.Kind == KindProbeAttempt {
			seqs = append(seqs, ev.Seq)
		}
		if ev.Kind == KindTruncated {
			dropped = ev.Dropped
		}
	}
	// Head keeps seqs 0-3, tail ring keeps the last two (8, 9); 4
	// events (4-7) are dropped and reported.
	want := []uint64{0, 1, 2, 3, 8, 9}
	if len(seqs) != len(want) {
		t.Fatalf("kept probe seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("kept probe seqs = %v, want %v", seqs, want)
		}
	}
	if dropped != 4 {
		t.Errorf("truncated dropped = %d, want 4", dropped)
	}
	if problems := Lint(c.events); problems != nil {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestSpanForcedKeepMergesBySeq(t *testing.T) {
	var c collect
	p := New(&c, "app", Sampling{Head: 1, Tail: 2}, nil)
	sp := p.StreamSpan("st")
	sp.BeginDatagram()
	sp.Probe(0, 0, "", OutcomeShift) // seq 0: head
	sp.Probe(1, 0, "", OutcomeShift) // seq 1: tail (later overwritten)
	// seq 2: failing verdict past the head — must survive any overflow.
	sp.Verdict(1, time.Time{}, "STUN/TURN", "0x0001", 3, "bad attr", 0, []byte{1, 2})
	sp.Probe(2, 0, "", OutcomeShift) // seq 3: tail
	sp.Probe(3, 0, "", OutcomeShift) // seq 4: tail, evicts seq 1
	sp.Flush()

	var seqs []uint64
	for _, ev := range c.events {
		if ev.Span == sp.id && ev.Kind != KindTruncated {
			seqs = append(seqs, ev.Seq)
		}
	}
	want := []uint64{0, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("flushed seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("flushed seqs = %v, want %v (merge by seq broken)", seqs, want)
		}
	}
	if problems := Lint(c.events); problems != nil {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestSpanHeadBudgetSpansFlushes(t *testing.T) {
	var c collect
	p := New(&c, "app", Sampling{Head: 2, Tail: 1}, nil)
	sp := p.StreamSpan("st")
	sp.BeginDatagram()
	sp.Probe(0, 0, "", OutcomeShift)
	sp.Probe(1, 0, "", OutcomeShift)
	sp.Flush() // head exhausted in chunk 1
	sp.Probe(2, 0, "", OutcomeShift)
	sp.Probe(3, 0, "", OutcomeShift)
	sp.Flush() // chunk 2 must go through the tail ring, not a fresh head

	probes := 0
	truncs := 0
	for _, ev := range c.events {
		switch ev.Kind {
		case KindProbeAttempt:
			probes++
		case KindTruncated:
			truncs++
		}
	}
	if probes != 3 { // 2 head + 1 tail; one dropped
		t.Errorf("probes kept = %d, want 3 (head budget must not reset per flush)", probes)
	}
	if truncs != 1 {
		t.Errorf("truncated markers = %d, want 1", truncs)
	}
}

func TestSpanDoubleFlushEmitsNothingTwice(t *testing.T) {
	var c collect
	p := New(&c, "app", Sampling{}, nil)
	sp := p.StreamSpan("st")
	sp.BeginDatagram()
	sp.Probe(0, 0x80, "RTP", OutcomeMatch)
	sp.Flush()
	n := len(c.events)
	sp.Flush()
	if len(c.events) != n {
		t.Fatalf("second flush emitted %d extra events", len(c.events)-n)
	}
}

func TestVerdictEvent(t *testing.T) {
	var c collect
	p := New(&c, "app", Sampling{}, nil)
	sp := p.StreamSpan("st")
	ts := time.Date(2026, 8, 6, 12, 0, 0, 250e6, time.UTC)
	window := bytes.Repeat([]byte{0xab}, 30)
	sp.Verdict(7, ts, "STUN/TURN", "0x0001", 4, "length mismatch", 2, window)

	var ev Event
	sp.Flush()
	for _, e := range c.events {
		if e.Kind == KindCriterionVerdict {
			ev = e
		}
	}
	if ev.Dgram != 7 || ev.Criterion != 4 || ev.MsgType != "0x0001" || ev.Offset != 2 {
		t.Errorf("verdict fields = %+v", ev)
	}
	if ev.TS != "2026-08-06T12:00:00.25Z" {
		t.Errorf("verdict ts = %q", ev.TS)
	}
	// 24-byte cap with truncation marker.
	if want := strings.Repeat("ab", 24) + "+"; ev.Bytes != want {
		t.Errorf("verdict bytes = %q, want %q", ev.Bytes, want)
	}
}

func TestEventCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	var c collect
	p := New(&c, "app", Sampling{}, reg)
	p.StreamAdmitted("s")
	p.CaptureEnd("done")

	for _, kind := range []Kind{KindCaptureBegin, KindStreamAdmitted, KindCaptureEnd} {
		c := reg.Counter("trace_events_total", metrics.L("kind", string(kind)))
		if c.Value() != 1 {
			t.Errorf("trace_events_total{kind=%s} = %d, want 1", kind, c.Value())
		}
	}
	if c := reg.Counter("trace_events_total", metrics.L("kind", string(KindProbeAttempt))); c.Value() != 0 {
		t.Errorf("probe counter = %d, want 0", c.Value())
	}
}

func TestBufferRing(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Emit(Event{Seq: uint64(i)})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if b.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", b.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	in := []Event{
		{Kind: KindCaptureBegin, Span: "aa", Seq: 0, App: "Zoom"},
		{Kind: KindCriterionVerdict, Span: "bb", Parent: "aa", Seq: 3, Stream: "s",
			Dgram: 2, Proto: "STUN/TURN", MsgType: "0x0001", Criterion: 3,
			Reason: "bad attribute", Bytes: "0001", TS: "2026-08-06T12:00:00Z"},
	}
	for _, ev := range in {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLStrict(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"kind\":\"probe\",\"span\":\"x\",\"seq\":0}\n{\"kind\":\"probe\",\"bogus\":1}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("unknown field not rejected with line number: %v", err)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	events := []Event{
		{Kind: "nonsense", Span: "x", Seq: 0},
		{Kind: KindProbeAttempt, Span: "y", Seq: 0, Outcome: "maybe", Dgram: 1},
		{Kind: KindProbeAttempt, Span: "y", Seq: 0, Outcome: OutcomeShift, Dgram: 1}, // seq not increasing
		{Kind: KindCriterionVerdict, Span: "y", Seq: 5, Criterion: 2, MsgType: "t"},  // failing, no reason
		{Kind: KindStreamFiltered, Span: "z", Parent: "ghost", Seq: 0, Stream: "s", Rule: "r", Stage: 3},
		{Kind: KindTruncated, Span: "z", Seq: 1, Stream: "s"},
	}
	problems := Lint(events)
	for _, want := range []string{
		"unknown kind", `outcome "maybe"`, "not above", "without reason",
		"no capture-begin", "stage 3", "non-positive drop count",
	} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lint missed %q in %v", want, problems)
		}
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should be nil")
	}
	var a, b collect
	if got := Tee(nil, &a); got != Tracer(&a) {
		t.Fatal("single-sink Tee should unwrap")
	}
	tee := Tee(&a, &b)
	tee.Emit(Event{Kind: KindCaptureBegin})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("tee fan-out: %d/%d events, want 1/1", len(a.events), len(b.events))
	}
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want Query
	}{
		{"Zoom", Query{App: "Zoom"}},
		{"Zoom/udp 10.0", Query{App: "Zoom", Stream: "udp 10.0"}},
		{"Zoom//0x0101", Query{App: "Zoom", MsgType: "0x0101"}},
		{"//0x0101", Query{MsgType: "0x0101"}},
		{"a/b/c/d", Query{App: "a", Stream: "b", MsgType: "c/d"}},
	}
	for _, c := range cases {
		if got := ParseQuery(c.in); got != c.want {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// traceFixture builds a two-stream trace: one admitted stream with a
// failing verdict, one filtered stream.
func traceFixture() []Event {
	var c collect
	p := New(&c, "Zoom", Sampling{}, nil)
	p.StreamAdmitted("udp A")
	p.StreamFiltered("udp B", 2, "stun-only", "no media followed")
	sp := p.StreamSpan("udp A")
	sp.BeginDatagram()
	sp.Probe(0, 0x00, "", OutcomeShift)
	sp.Probe(1, 0x00, "STUN/TURN", OutcomeMatch)
	sp.Extraction("proprietary header", 1)
	sp.Verdict(1, time.Time{}, "STUN/TURN", "0x0001", 3, "attribute 0x0101 is not defined", 1, []byte{0, 1})
	sp.Flush()
	p.CaptureEnd("done")
	return c.events
}

func TestExplainNamesFailingCriterion(t *testing.T) {
	out := Explain(traceFixture(), ParseQuery("Zoom//0x0001"))
	for _, want := range []string{
		"Zoom / udp A",
		"admitted by the two-stage filter",
		"failed criterion 3 (attribute type validity): attribute 0x0101 is not defined",
		"offending bytes: 0001",
		"matched at offset 1",
		"after 1 one-byte shifts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// The msgtype filter must exclude the filtered stream (no verdicts).
	if strings.Contains(out, "udp B") {
		t.Errorf("msgtype-filtered explain leaked verdict-less stream:\n%s", out)
	}
}

func TestExplainFilteredStream(t *testing.T) {
	out := Explain(traceFixture(), ParseQuery("/udp B"))
	if !strings.Contains(out, `filtered at stage 2 by rule "stun-only" (no media followed)`) {
		t.Errorf("explain missing filter fate:\n%s", out)
	}
}

func TestExplainNoMatchListsStreams(t *testing.T) {
	out := Explain(traceFixture(), ParseQuery("Teams"))
	if !strings.Contains(out, "no trace events match") || !strings.Contains(out, "udp A") {
		t.Errorf("no-match output should list available streams:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	out := Summary(traceFixture())
	if !strings.Contains(out, "1 captures") || !strings.Contains(out, "verdict") {
		t.Errorf("summary output:\n%s", out)
	}
}

func TestCriterionName(t *testing.T) {
	if CriterionName(0) != "compliant" || CriterionName(3) != "attribute type validity" {
		t.Fatal("criterion names drifted")
	}
	if CriterionName(9) != "criterion 9" {
		t.Fatalf("out-of-range name = %q", CriterionName(9))
	}
}
