package metrics

import (
	"encoding/json"
	"expvar"
	"io"
)

// Snapshot is a point-in-time view of every instrument in a registry,
// keyed by canonical metric name (see Name). It marshals to stable
// JSON: encoding/json sorts map keys.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current state of every instrument. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	sharded := make(map[string]*ShardedCounter, len(r.sharded))
	for k, v := range r.sharded {
		sharded[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	// Sharded counters fold into the same counters namespace: scrapers
	// see one total per name, not the per-worker cells.
	for k, c := range sharded {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PublishExpvar publishes the registry under the given expvar name so
// it appears at /debug/vars. Publishing the same name twice is a
// no-op (the first registry wins); expvar offers no unpublish, so
// per-process singleton names like "rtcc" are expected. Safe on a nil
// registry (publishes empty snapshots).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
