package quicwire

import "testing"

// FuzzParseLong checks panic-freedom and header-length sanity.
func FuzzParseLong(f *testing.F) {
	f.Add(BuildLong(TypeInitial, Version1, []byte{1, 2, 3, 4}, []byte{5}, []byte{9}, []byte{0, 0}))
	f.Add(BuildVersionNegotiation([]byte{1}, []byte{2}, []uint32{Version1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseLong(data)
		if err != nil {
			return
		}
		if h.HeaderLen > len(data) {
			t.Fatalf("header length %d > input %d", h.HeaderLen, len(data))
		}
		if len(h.DCID) > 255 || len(h.SCID) > 255 {
			t.Fatal("cid longer than a length byte allows")
		}
	})
}
