// Group call: exercise the paper's declared future work (§2) — N-party
// conference calls — with the unchanged 1-on-1 compliance pipeline, and
// demonstrate why Zoom's deterministic SSRC assignment (§5.2.2) is a
// real robustness hazard once more than two parties are involved.
package main

import (
	"fmt"
	"log"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
)

func main() {
	start := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

	fmt.Println("Scaling: messages extracted per call size (Zoom group, 10s):")
	for _, n := range []int{3, 5, 8} {
		res := analyzeGroup(rtcc.GroupCallConfig{
			App: rtcc.Zoom, Participants: n, Seed: 7,
			Start: start, Duration: 10 * time.Second, MediaRate: 20,
		})
		msgs := 0
		for _, ps := range res.Stats.ByProtocol {
			msgs += ps.Messages
		}
		ratio, _ := res.Stats.VolumeCompliance()
		fmt.Printf("  %d participants: %6d messages, %.1f%% compliant by volume\n", n, msgs, 100*ratio)
	}

	fmt.Println("\nZoom deterministic SSRCs under collision (RFC 3550 §8 hazard):")
	for _, collide := range []bool{false, true} {
		res := analyzeGroup(rtcc.GroupCallConfig{
			App: rtcc.Zoom, Participants: 6, Seed: 7,
			Start: start, Duration: 10 * time.Second, MediaRate: 20,
			ForceSSRCCollision: collide,
		})
		rtp := res.Stats.ByProtocol[rtcc.ProtoRTP]
		label := "distinct SSRCs "
		if collide {
			label = "collided SSRCs "
		}
		fmt.Printf("  %s: %6d RTP messages recovered by the DPI\n", label, rtp.Messages)
	}
	fmt.Println("  ^ the collision interleaves two senders' sequence spaces on one")
	fmt.Println("    SSRC; continuity validation then discards the ambiguous side —")
	fmt.Println("    randomized per-session SSRCs exist precisely to avoid this.")

	fmt.Println("\nGoogle Meet group call (relay, ChannelData-wrapped media):")
	res := analyzeGroup(rtcc.GroupCallConfig{
		App: rtcc.GoogleMeet, Participants: 5, Seed: 9,
		Start: start, Duration: 10 * time.Second, MediaRate: 20,
	})
	st := res.Stats.ByProtocol[rtcc.ProtoSTUN]
	units := res.Stats.MessageUnits()
	fmt.Printf("  STUN/TURN share: %.1f%% of %d message units (ChannelData dominates)\n",
		100*float64(st.Messages)/float64(units), units)
}

func analyzeGroup(cfg rtcc.GroupCallConfig) *rtcc.CaptureAnalysis {
	res, err := rtcc.AnalyzeGroupCall(cfg, rtcc.Options{SkipFindings: true})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
