// Command rtccheck analyzes a pcap capture of an RTC call: it filters
// unrelated traffic, extracts protocol messages with the
// offset-shifting DPI, evaluates the five-criterion compliance model,
// and prints the results.
//
// Usage:
//
//	rtccheck -pcap traces/000_zoom_wi-fi-p2p.pcap \
//	    -start 2026-07-06T12:00:00Z -end 2026-07-06T12:00:30Z
//	rtccheck -pcap call.pcap            # call window = capture span
//	rtccheck -manifest traces/manifest.json   # analyze a whole directory
//	rtccheck -manifest traces/manifest.json -trace-out trace.jsonl
//	rtccheck -pcap call.pcap -explain "Zoom//0x0c01"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	rtcc "github.com/rtc-compliance/rtcc"
	"github.com/rtc-compliance/rtcc/internal/cmdutil"
	"github.com/rtc-compliance/rtcc/internal/dpi"
	"github.com/rtc-compliance/rtcc/internal/flow"
	"github.com/rtc-compliance/rtcc/internal/pipeline"
	"github.com/rtc-compliance/rtcc/internal/propheader"
	"github.com/rtc-compliance/rtcc/internal/proto"
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
	"github.com/rtc-compliance/rtcc/internal/report"
)

// cliFlags is rtccheck's flag surface, registered on an explicit
// FlagSet so the golden surface test can pin it.
type cliFlags struct {
	fs *flag.FlagSet

	pcapPath, manifest         *string
	startStr, endStr, label    *string
	kOffset, workers, shards   *int
	findings, verbose          *bool
	inferHdr, jsonOut          *bool
	metAddr, traceOut, explain *string
	configPath                 *string
	listProt, version          *bool
}

func newFlags() *cliFlags {
	fs := flag.NewFlagSet("rtccheck", flag.ExitOnError)
	c := &cliFlags{fs: fs}
	c.pcapPath = fs.String("pcap", "", "pcap file to analyze")
	c.manifest = fs.String("manifest", "", "manifest.json from rtcgen: analyze every capture it lists")
	c.startStr = fs.String("start", "", "call window start (RFC 3339); default: capture start")
	c.endStr = fs.String("end", "", "call window end (RFC 3339); default: capture end")
	c.label = fs.String("label", "", "application label for the report")
	c.kOffset = fs.Int("k", 200, "DPI maximum candidate-extraction offset")
	c.workers = cmdutil.WorkersFlag(fs)
	c.shards = cmdutil.ShardsFlag(fs)
	c.findings = fs.Bool("findings", true, "report behavioural findings")
	c.verbose = fs.Bool("v", false, "print per-type detail")
	c.inferHdr = fs.Bool("infer-headers", false, "infer the structure of proprietary headers per stream")
	c.jsonOut = fs.Bool("json", false, "emit machine-readable JSON instead of text")
	c.metAddr = cmdutil.MetricsAddrFlag(fs)
	c.listProt = fs.Bool("protocols", false, "list the registered wire protocols and exit")
	c.traceOut = cmdutil.TraceOutFlag(fs, "")
	c.explain = fs.String("explain", "", `trace the run and explain decisions matching "<app>/<stream>/<msgtype>" (each part an optional substring)`)
	c.configPath = cmdutil.ConfigFlag(fs)
	c.version = cmdutil.VersionFlag(fs)
	return c
}

// apply copies flag values onto cfg. With only == nil every flag
// applies (the defaults layer); otherwise just the explicitly-set ones
// (the precedence layer re-applied over a config file).
func (c *cliFlags) apply(cfg *pipeline.Config, only map[string]bool) {
	set := func(name string) bool { return only == nil || only[name] }
	if set("pcap") && *c.pcapPath != "" {
		cfg.Source.Kind = pipeline.SourcePCAP
		cfg.Source.Path = *c.pcapPath
	}
	if set("label") && (only != nil || *c.label != "") {
		cfg.Source.Label = *c.label
	}
	if set("start") && (only != nil || *c.startStr != "") {
		cfg.Source.Start = *c.startStr
	}
	if set("end") && (only != nil || *c.endStr != "") {
		cfg.Source.End = *c.endStr
	}
	if set("k") {
		cfg.Analysis.MaxOffset = *c.kOffset
	}
	if set("workers") && (only != nil || *c.workers != 0) {
		cfg.Exec.Workers = *c.workers
	}
	if set("shards") && (only != nil || *c.shards != 1) {
		cfg.Exec.Shards = *c.shards
	}
	if set("findings") {
		v := *c.findings
		cfg.Analysis.Findings = &v
	}
	if set("infer-headers") && (only != nil || *c.inferHdr) {
		cfg.Analysis.KeepPayloads = *c.inferHdr
	}
	if set("json") && (only != nil || *c.jsonOut) {
		if *c.jsonOut {
			cfg.Sinks.Report = "json"
		} else {
			cfg.Sinks.Report = "text"
		}
	}
	if set("metrics-addr") && (only != nil || *c.metAddr != "") {
		cfg.Sinks.MetricsAddr = *c.metAddr
	}
	if set("trace-out") && (only != nil || *c.traceOut != "") {
		cfg.Sinks.TraceOut = *c.traceOut
	}
	if set("explain") && (only != nil || *c.explain != "") {
		cfg.Sinks.Explain = *c.explain
	}
}

// pipelineConfig assembles the declarative config with the standard
// precedence: flag defaults, then the -config file, then explicitly
// set flags.
func (c *cliFlags) pipelineConfig() (pipeline.Config, error) {
	var cfg pipeline.Config
	c.apply(&cfg, nil)
	if *c.configPath != "" {
		if err := pipeline.LoadFile(&cfg, *c.configPath); err != nil {
			return cfg, err
		}
		c.apply(&cfg, cmdutil.Explicit(c.fs))
	}
	return cfg, nil
}

func main() {
	c := newFlags()
	c.fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *c.version {
		cmdutil.PrintVersion(os.Stdout, "rtccheck")
		return
	}
	if *c.listProt {
		printProtocols(os.Stdout)
		return
	}
	cfg, err := c.pipelineConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtccheck:", err)
		os.Exit(2)
	}
	hasPCAP := cfg.Source.Kind == pipeline.SourcePCAP && cfg.Source.Path != ""
	if hasPCAP == (*c.manifest != "") {
		fmt.Fprintln(os.Stderr, "rtccheck: exactly one capture source is required: -pcap (or a config file source) or -manifest")
		os.Exit(2)
	}
	if !hasPCAP {
		// The manifest drives source selection per entry; the config
		// still validates the execution and sink sections.
		cfg.Source.Kind = pipeline.SourcePCAP
		cfg.Source.Path = *c.manifest
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rtccheck:", err)
		os.Exit(2)
	}
	reg, stopMetrics, err := cmdutil.ServeMetrics("rtccheck", cfg.Sinks.MetricsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtccheck:", err)
		os.Exit(1)
	}
	defer stopMetrics()

	runner, err := pipeline.NewRunner(cfg, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtccheck:", err)
		os.Exit(1)
	}

	if *c.manifest != "" {
		err = runManifest(*c.manifest, c, runner)
	} else {
		err = runOne(c, cfg, runner)
	}
	if err == nil {
		err = runner.FlushTrace(os.Stderr)
	}
	if err == nil && cfg.Sinks.Explain != "" {
		fmt.Print(rtcc.ExplainTrace(runner.ExplainEvents(), cfg.Sinks.Explain))
	}
	if cerr := runner.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtccheck:", err)
		os.Exit(1)
	}
}

// printProtocols renders the registered protocol listing backing
// `make proto-list`: one row per handler with its reporting family,
// demultiplexing precedences, wire fingerprint, and fuzz target.
func printProtocols(w io.Writer) {
	reg := proto.Default()
	precs := make(map[proto.ID][]int)
	for _, p := range reg.Probers() {
		precs[p.ID] = append(precs[p.ID], p.Precedence)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tNAME\tFAMILY\tPRECEDENCE\tFUZZ\tFINGERPRINT")
	for _, m := range reg.Metas() {
		fam, _ := reg.Meta(m.Family)
		ps := ""
		for i, p := range precs[m.ID] {
			if i > 0 {
				ps += ","
			}
			ps += fmt.Sprint(p)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\n", m.ID, m.Name, fam.Name, ps, m.Fuzz, m.Fingerprint)
	}
	tw.Flush()
}

func runOne(c *cliFlags, cfg pipeline.Config, runner *pipeline.Runner) error {
	start, end, err := cfg.Source.Window()
	if err != nil {
		return err
	}
	f, err := os.Open(cfg.Source.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Header inference re-reads per-stream payloads after the analysis,
	// so it needs the streaming core to keep them (the -infer-headers
	// flag turns on analysis.keep_payloads).
	ca, err := runner.AnalyzeReader(f, cfg.Source.EffectiveLabel(), start, end)
	if err != nil {
		return err
	}
	if cfg.Sinks.Report == "json" {
		return printJSON(ca)
	}
	if cfg.Sinks.Report != "none" {
		printAnalysis(ca, *c.verbose)
	}
	if *c.inferHdr {
		printHeaderInference(ca, cfg.Analysis.MaxOffset)
	}
	return nil
}

// jsonReport is the machine-readable analysis result for one capture,
// intended for deployment-diagnostics tooling.
type jsonReport struct {
	Label        string `json:"label"`
	DecodeErrors int    `json:"decode_errors"`
	Streams      struct {
		RawUDP int `json:"raw_udp"`
		RawTCP int `json:"raw_tcp"`
		Stage1 int `json:"removed_stage1"`
		Stage2 int `json:"removed_stage2"`
		RTCUDP int `json:"rtc_udp"`
		RTCTCP int `json:"rtc_tcp"`
	} `json:"streams"`
	Datagrams map[string]int `json:"datagrams"`
	Protocols map[string]struct {
		Messages  int     `json:"messages"`
		Compliant int     `json:"compliant"`
		Ratio     float64 `json:"ratio"`
	} `json:"protocols"`
	VolumeCompliance *float64      `json:"volume_compliance,omitempty"`
	Types            []jsonType    `json:"message_types"`
	Findings         []jsonFinding `json:"findings,omitempty"`
}

type jsonType struct {
	Protocol     string `json:"protocol"`
	Label        string `json:"label"`
	Messages     int    `json:"messages"`
	NonCompliant int    `json:"non_compliant"`
	Reason       string `json:"reason,omitempty"`
}

type jsonFinding struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Count  int    `json:"count"`
}

func printJSON(ca *rtcc.CaptureAnalysis) error {
	var rep jsonReport
	rep.Label = ca.Label
	rep.DecodeErrors = ca.DecodeErrors
	f := ca.Filter
	rep.Streams.RawUDP = f.RawUDP.Streams
	rep.Streams.RawTCP = f.RawTCP.Streams
	rep.Streams.Stage1 = f.Stage1UDP.Streams + f.Stage1TCP.Streams
	rep.Streams.Stage2 = f.Stage2UDP.Streams + f.Stage2TCP.Streams
	rep.Streams.RTCUDP = f.RTCUDP.Streams
	rep.Streams.RTCTCP = f.RTCTCP.Streams
	rep.Datagrams = map[string]int{}
	for class, n := range ca.Stats.Datagrams {
		rep.Datagrams[class.String()] = n
	}
	rep.Protocols = map[string]struct {
		Messages  int     `json:"messages"`
		Compliant int     `json:"compliant"`
		Ratio     float64 `json:"ratio"`
	}{}
	for fam, ps := range ca.Stats.ByProtocol {
		entry := rep.Protocols[fam.String()]
		entry.Messages = ps.Messages
		entry.Compliant = ps.Compliant
		if ps.Messages > 0 {
			entry.Ratio = float64(ps.Compliant) / float64(ps.Messages)
		}
		rep.Protocols[fam.String()] = entry
	}
	if r, ok := ca.Stats.VolumeCompliance(); ok {
		rep.VolumeCompliance = &r
	}
	for key, ts := range ca.Stats.Types {
		jt := jsonType{
			Protocol:     key.Protocol.String(),
			Label:        key.Label,
			Messages:     ts.Total,
			NonCompliant: ts.NonCompliant,
		}
		for reason := range ts.Reasons {
			jt.Reason = reason
			break
		}
		rep.Types = append(rep.Types, jt)
	}
	sort.Slice(rep.Types, func(i, j int) bool {
		if rep.Types[i].Protocol != rep.Types[j].Protocol {
			return rep.Types[i].Protocol < rep.Types[j].Protocol
		}
		return rep.Types[i].Label < rep.Types[j].Label
	})
	for _, fd := range ca.Findings {
		rep.Findings = append(rep.Findings, jsonFinding{Kind: fd.Kind, Detail: fd.Detail, Count: fd.Count})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// printHeaderInference re-runs the DPI per RTC stream to collect the
// proprietary header regions and prints the inferred structure of each
// stream with enough samples.
func printHeaderInference(ca *rtcc.CaptureAnalysis, k int) {
	engine := &dpi.Engine{MaxOffset: k}
	if k <= 0 {
		engine = dpi.NewEngine()
	}
	for _, s := range ca.Filter.RTC {
		if s.Key.Proto != 17 {
			continue
		}
		payloads := make([][]byte, len(s.Packets))
		for i, p := range s.Packets {
			payloads[i] = p.Payload
		}
		var samples []propheader.Sample
		for i, r := range engine.InspectStream(payloads) {
			if r.Class != dpi.ClassProprietaryHeader {
				continue
			}
			dir := propheader.DirAToB
			if s.Packets[i].Dir == flow.DirBToA {
				dir = propheader.DirBToA
			}
			samples = append(samples, propheader.Sample{
				Header:    r.ProprietaryHeader,
				Dir:       dir,
				Remainder: len(payloads[i]) - len(r.ProprietaryHeader),
			})
		}
		if len(samples) < 8 {
			continue
		}
		fmt.Printf("proprietary header structure on %v:\n%s", s.Key, propheader.Describe(propheader.Infer(samples)))
	}
}

type manifestEntry struct {
	File      string    `json:"file"`
	App       string    `json:"app"`
	CallStart time.Time `json:"call_start"`
	CallEnd   time.Time `json:"call_end"`
}

func runManifest(path string, c *cliFlags, runner *pipeline.Runner) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []manifestEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("parse manifest: %w", err)
	}
	dir := filepath.Dir(path)
	for _, e := range entries {
		ca, err := analyzeEntry(dir, e, runner)
		if err != nil {
			return fmt.Errorf("%s: %w", e.File, err)
		}
		ca.Stats.App = e.App
		fmt.Printf("=== %s (%s) ===\n", e.File, e.App)
		printAnalysis(ca, *c.verbose)
		if *c.inferHdr {
			printHeaderInference(ca, runner.Config().Analysis.MaxOffset)
		}
		fmt.Println()
	}
	return nil
}

// analyzeEntry analyzes one manifest capture under a label that leads
// with the app name (so -explain "Zoom" queries match) but stays
// unique per entry: span IDs are hashed from the label, and a manifest
// analyzes many captures of the same app into one trace export —
// reusing the bare app name would collide their spans and restart
// sequence numbers mid-file.
func analyzeEntry(dir string, e manifestEntry, runner *pipeline.Runner) (*rtcc.CaptureAnalysis, error) {
	f, err := os.Open(filepath.Join(dir, e.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	label := e.File
	if e.App != "" {
		label = e.App + " (" + e.File + ")"
	}
	return runner.AnalyzeReader(f, label, e.CallStart, e.CallEnd)
}

func printAnalysis(ca *rtcc.CaptureAnalysis, verbose bool) {
	f := ca.Filter
	decoded := f.RawUDP.Packets + f.RawTCP.Packets
	datagrams := 0
	for _, n := range ca.Stats.Datagrams {
		datagrams += n
	}
	messages, compliant := 0, 0
	for _, ps := range ca.Stats.ByProtocol {
		messages += ps.Messages
		compliant += ps.Compliant
	}
	fmt.Printf("pipeline: %d frames in (%d decode errors) -> %d packets -> dropped %d stage1 + %d stage2 -> %d RTC packets -> %d datagrams -> %d messages (%d compliant)\n",
		decoded+ca.DecodeErrors, ca.DecodeErrors, decoded,
		f.Stage1UDP.Packets+f.Stage1TCP.Packets,
		f.Stage2UDP.Packets+f.Stage2TCP.Packets,
		f.RTCUDP.Packets+f.RTCTCP.Packets,
		datagrams, messages, compliant)
	fmt.Printf("streams: raw %d UDP / %d TCP; removed stage1 %d, stage2 %d; RTC %d UDP / %d TCP\n",
		f.RawUDP.Streams, f.RawTCP.Streams,
		f.Stage1UDP.Streams+f.Stage1TCP.Streams,
		f.Stage2UDP.Streams+f.Stage2TCP.Streams,
		f.RTCUDP.Streams, f.RTCTCP.Streams)
	if ca.DecodeErrors > 0 {
		fmt.Printf("decode errors: %d undecodable frames dropped\n", ca.DecodeErrors)
	}

	total := 0
	for _, n := range ca.Stats.Datagrams {
		total += n
	}
	fmt.Printf("datagrams: %d total; %d standard, %d proprietary-header, %d fully-proprietary\n",
		total,
		ca.Stats.Datagrams[dpi.ClassStandard],
		ca.Stats.Datagrams[dpi.ClassProprietaryHeader],
		ca.Stats.Datagrams[dpi.ClassFullyProprietary])

	for _, fam := range proto.Default().Families() {
		ps := ca.Stats.ByProtocol[fam]
		if ps == nil || ps.Messages == 0 {
			continue
		}
		fmt.Printf("%-10s %7d messages, %6.2f%% compliant\n",
			fam, ps.Messages, 100*float64(ps.Compliant)/float64(ps.Messages))
	}
	if r, ok := ca.Stats.VolumeCompliance(); ok {
		fmt.Printf("overall volume compliance: %.2f%%\n", 100*r)
	}
	c, t := ca.Stats.TypeCompliance(dpi.ProtoUnknown)
	fmt.Printf("message types: %d/%d compliant\n", c, t)

	if verbose {
		type row struct {
			key    string
			stat   *report.TypeStat
			reason string
		}
		var rows []row
		for key, ts := range ca.Stats.Types {
			reason := ""
			for r := range ts.Reasons {
				reason = r
				break
			}
			rows = append(rows, row{key.String(), ts, reason})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		for _, r := range rows {
			status := "compliant"
			if !r.stat.Compliant() {
				status = "NON-COMPLIANT: " + r.reason
			}
			fmt.Printf("  %-28s %6d msgs  %s\n", r.key, r.stat.Total, status)
		}
	}
	for _, fd := range ca.Findings {
		fmt.Printf("finding: %s: %s\n", fd.Kind, fd.Detail)
	}
}
