package core

// The core pipeline carries no protocol knowledge of its own — it runs
// whatever drivers are linked into the binary. Tests exercise it with
// the full driver set.
import (
	_ "github.com/rtc-compliance/rtcc/internal/proto/protoall"
)
