// Package rtpdrv registers RTP with the wire-protocol registry. RTP is
// the one target protocol whose header pattern is weak (any version-2
// first byte passes), so the driver supplies all three hooks of the
// two-pass design: a pass-1 prober that tallies per-SSRC candidate
// sightings into the scan state, a pass-2 validator gated on the
// validated-SSRC set with sequence/timestamp continuity, and an Accept
// hook that truncates a message when a strong second candidate starts
// inside its claimed payload (Zoom's two-RTP case).
package rtpdrv

import (
	"encoding/binary"
	"strconv"
	"time"

	"github.com/rtc-compliance/rtcc/internal/proto"
	"github.com/rtc-compliance/rtcc/internal/proto/rtcpdrv"
	"github.com/rtc-compliance/rtcc/internal/proto/stundrv"
	"github.com/rtc-compliance/rtcc/internal/rtp"
)

func init() {
	proto.Register(handler{})
}

// Precedence orders RTP last: its fingerprint (two version bits) is the
// weakest in the pipeline, so every structural signature must get the
// first claim on a payload window.
const Precedence = 60

type handler struct{}

func (handler) Meta() proto.Meta {
	return proto.Meta{
		ID:          proto.RTP,
		Name:        "RTP",
		Slug:        "rtp",
		Family:      proto.RTP,
		Order:       2,
		Fingerprint: "version 2 + first byte outside the RFC 5761 RTCP range, validated by per-SSRC sequence/timestamp continuity",
		Fuzz:        "./internal/rtp:FuzzDecode",
	}
}

func (handler) Probers() []proto.Prober {
	return []proto.Prober{{
		Precedence: Precedence,
		Pass1:      true,
		// Version bits 2 in the top two bit positions.
		First:    func(b byte) bool { return b>>6 == 2 },
		Probe:    tallyProbe,
		Validate: Match,
	}}
}

// streamState is RTP's per-stream pass-2 state: last accepted sequence
// number and timestamp per SSRC, plus the decode scratch that keeps the
// probe path allocation-free and the packet slab that keeps acceptance
// allocation-free.
type streamState struct {
	lastSeq map[uint32]uint16
	lastTS  map[uint32]uint32
	probe   rtp.Packet
	slab    pktSlab
}

// slabBlock is the packet count of one slab block. Blocks are fixed
// size so accepted *rtp.Packet pointers stay stable while the slab
// grows (append on a flat slice would move them).
const slabBlock = 64

// pktSlab bump-allocates rtp.Packet values out of reusable fixed-size
// blocks. Recycling is epoch-keyed: when the stream state's Epoch
// advances (one bump per Finalize chunk), the slab rewinds and the
// blocks are reused, because the previous chunk's messages have been
// consumed by then (DESIGN.md §14). Within an epoch every next call
// returns a distinct, stable packet.
type pktSlab struct {
	blocks     [][]rtp.Packet
	block, idx int
	epoch      uint64
}

func (s *pktSlab) next(epoch uint64) *rtp.Packet {
	if epoch != s.epoch {
		s.epoch = epoch
		s.block, s.idx = 0, 0
	}
	if s.block == len(s.blocks) {
		s.blocks = append(s.blocks, make([]rtp.Packet, slabBlock))
	}
	p := &s.blocks[s.block][s.idx]
	if s.idx++; s.idx == slabBlock {
		s.block++
		s.idx = 0
	}
	return p
}

func state(st *proto.StreamState) *streamState {
	if v := st.Slot(proto.RTP); v != nil {
		return v.(*streamState)
	}
	s := &streamState{
		lastSeq: make(map[uint32]uint16),
		lastTS:  make(map[uint32]uint32),
	}
	st.SetSlot(proto.RTP, s)
	return s
}

// scanState is RTP's pass-1 state: per-SSRC candidate tallies and the
// decode scratch for sightings.
type scanState struct {
	cands map[uint32]*candTally
	probe rtp.Packet
}

// candTally is the incremental form of pass 1's per-SSRC observation
// list: validation only ever compares adjacent sightings, so the last
// sighting plus a count carries the same information.
type candTally struct {
	n       int
	lastSeq uint16
	lastTS  uint32
}

func scan(sc *proto.ScanState) *scanState {
	if v := sc.Slot(proto.RTP); v != nil {
		return v.(*scanState)
	}
	s := &scanState{cands: make(map[uint32]*candTally)}
	sc.SetSlot(proto.RTP, s)
	return s
}

// tallyProbe advances pass 1 at one offset: it records an RTP candidate
// sighting and always reports no match, so the engine's scan advances
// by one byte — candidate RTP headers are not yet trusted to consume
// their span.
func tallyProbe(c proto.Candidate, sc *proto.ScanState) (proto.Candidate, bool) {
	b := c.Bytes()
	if !rtp.LooksLikeHeader(b) || (b[1] >= 192 && b[1] <= 223) {
		return c, false
	}
	// A sighting is only recorded for zero-CSRC candidates, and the
	// CSRC count is the low nibble of the first byte: settling the
	// common nonzero case here skips the state lookup and header
	// decode for ~15/16 of the version-2 windows the scan visits.
	if b[0]&0x0F != 0 {
		return c, false
	}
	s := scan(sc)
	// Decode into the scan state's scratch: the sighting only needs
	// header fields, so nothing escapes the iteration. The CSRC count
	// is already known to be zero from the pre-check above.
	p := &s.probe
	if rtp.DecodeInto(p, b) == nil {
		s.note(sc, p.SSRC, p.SequenceNumber, p.Timestamp)
	}
	return c, false
}

// note records one pass-1 candidate sighting. An SSRC is validated by
// one adjacent candidate pair whose sequence numbers are continuous AND
// whose timestamps advance plausibly. The timestamp condition matters:
// byte windows that straddle a real RTP header inherit slowly-cycling
// sequence bytes (so sequence continuity alone can be fooled) but their
// inherited timestamp field jumps by 2^24 per packet.
func (s *scanState) note(sc *proto.ScanState, ssrc uint32, seq uint16, ts uint32) {
	o := s.cands[ssrc]
	if o == nil {
		s.cands[ssrc] = &candTally{n: 1, lastSeq: seq, lastTS: ts}
		return
	}
	if !sc.ValidatedSSRC[ssrc] && seqClose(o.lastSeq, seq) && tsClose(o.lastTS, ts) {
		sc.ValidatedSSRC[ssrc] = true
	}
	o.n++
	o.lastSeq = seq
	o.lastTS = ts
}

// seqClose reports whether b is a plausible successor of sequence
// number a: strictly after it within a small forward window, or a small
// backward step (reordering), with wraparound.
func seqClose(a, b uint16) bool {
	d := b - a // wraparound arithmetic
	return d != 0 && (d < 64 || d > 0xffff-16)
}

// tsClose reports whether an RTP timestamp is plausible given the last
// accepted one for the SSRC: within ±2^21 ticks (over 20 seconds at a
// 90 kHz video clock), with wraparound.
func tsClose(last, ts uint32) bool {
	d := ts - last
	return d < 1<<21 || d > (1<<32)-(1<<21)
}

// Match matches RTP: version 2, first payload byte outside the RTCP
// demultiplexing range (RFC 5761), and either a known SSRC with a
// plausible next sequence number or a fresh zero-CSRC packet.
func Match(c proto.Candidate, st *proto.StreamState) (proto.Message, bool) {
	b := c.Bytes()
	if !rtp.LooksLikeHeader(b) {
		return proto.Message{}, false
	}
	if b[1] >= 192 && b[1] <= 223 {
		return proto.Message{}, false // RTCP range
	}
	if st.ValidatedSSRC != nil && !st.ValidatedSSRC[binary.BigEndian.Uint32(b[8:12])] {
		// Stream-validated mode: only SSRCs with cross-packet support
		// survive (paper §4.1.1: "continuous sequence number within the
		// same stream"). The SSRC sits at fixed offset 8 of the header
		// regardless of what follows, so the gate runs on the raw bytes
		// before the full decode: nearly every candidate window fails
		// it, and a window that would fail decode is rejected either
		// way.
		return proto.Message{}, false
	}
	rs := state(st)
	// Probe into the stream state's scratch Packet; most candidate
	// offsets are rejected, so the heap copy is deferred to acceptance.
	probe := &rs.probe
	if rtp.DecodeInto(probe, b) != nil {
		return proto.Message{}, false
	}
	if last, ok := rs.lastSeq[probe.SSRC]; ok {
		if !seqClose(last, probe.SequenceNumber) {
			return proto.Message{}, false
		}
		if lastTS, has := rs.lastTS[probe.SSRC]; has && !tsClose(lastTS, probe.Timestamp) {
			// Known SSRC but an implausible timestamp jump: a stray
			// byte window that happens to cover a real SSRC value.
			return proto.Message{}, false
		}
	} else if probe.CSRCCount != 0 {
		// First sighting of an SSRC: RTC media never uses CSRC lists in
		// these applications, so a nonzero CSRC count on a fresh SSRC
		// marks a mis-parse.
		return proto.Message{}, false
	}
	p := rs.slab.next(st.Epoch)
	*p = *probe
	if len(probe.CSRC) > 0 {
		p.CSRC = append([]uint32(nil), probe.CSRC...)
	} else {
		p.CSRC = nil // scratch reuse leaves a non-nil empty slice
	}
	return proto.Message{Protocol: proto.RTP, Length: len(b), RTP: p}, true
}

// Accept post-processes an accepted RTP message: when a strong second
// candidate starts inside the claimed payload the message is truncated
// to it (the engine re-scans from the cut), and the accepted sequence
// state is recorded for the SSRC.
func (handler) Accept(payload []byte, m proto.Message, st *proto.StreamState) proto.Message {
	if cut, ok := findStrongCandidate(payload, m, st); ok {
		m = truncate(payload, m, cut)
	}
	rs := state(st)
	rs.lastSeq[m.RTP.SSRC] = m.RTP.SequenceNumber
	rs.lastTS[m.RTP.SSRC] = m.RTP.Timestamp
	return m
}

// findStrongCandidate scans inside an RTP message's claimed payload for
// a second message start. Only strong candidates count: a magic-cookie
// STUN header, a valid RTCP compound, or an RTP header whose SSRC
// matches the outer message (Zoom's two-RTP case).
func findStrongCandidate(payload []byte, m proto.Message, st *proto.StreamState) (int, bool) {
	rs := state(st)
	start := m.Offset + m.RTP.HeaderSize() + 1
	end := m.Offset + m.Length
	for j := start; j < end-rtp.HeaderLen; j++ {
		// The candidates' first-byte slices are disjoint (RFC 7983:
		// STUN's top bits are 00, the RTP/RTCP version bits are 10), so
		// at most one branch can match at any offset and half the byte
		// space skips the scan entirely.
		switch payload[j] >> 6 {
		case 0:
			c := proto.Candidate{Payload: payload[:end], Offset: j}
			if _, ok := stundrv.MatchCookie(c, st); ok {
				return j, true
			}
		case 2:
			c := proto.Candidate{Payload: payload[:end], Offset: j}
			// An RTCP region inside an RTP payload must show SSRC
			// support: encrypted media bytes occasionally imitate an
			// RTCP header, and accepting one would wrongly truncate the
			// outer RTP message.
			if m2, ok := rtcpdrv.Match(c, st); ok && len(m2.RTCP) > 0 {
				if ssrc, has := m2.RTCP[0].SenderSSRC(); has {
					_, known := rs.lastSeq[ssrc]
					if known || (st.ValidatedSSRC != nil && st.ValidatedSSRC[ssrc]) {
						return j, true
					}
				}
			}
			if inner, ok := Match(c, st); ok {
				if inner.RTP.SSRC == m.RTP.SSRC && inner.RTP.SequenceNumber != m.RTP.SequenceNumber {
					return j, true
				}
			}
		}
	}
	return 0, false
}

// truncate re-decodes the RTP message with its payload cut at the given
// absolute offset.
func truncate(payload []byte, m proto.Message, cut int) proto.Message {
	p, err := rtp.Decode(payload[m.Offset:cut])
	if err != nil {
		return m // cannot shrink; keep the original claim
	}
	m.RTP = p
	m.Length = cut - m.Offset
	return m
}

// ssrcSet is RTP's capture-scoped compliance state: every SSRC whose
// messages were judged, for the cross-call stream-identifier analysis.
type ssrcSet map[uint32]bool

func ssrcs(c *proto.Checker) ssrcSet {
	if v := c.Slot(proto.RTP); v != nil {
		return v.(ssrcSet)
	}
	s := make(ssrcSet)
	c.SetSlot(proto.RTP, s)
	return s
}

// ObservedSSRCs returns the set of SSRCs whose RTP messages the checker
// has judged (allocating the set on first use).
func ObservedSSRCs(c *proto.Checker) map[uint32]bool { return ssrcs(c) }

// ptLabels precomputes the payload-type labels (0-127) so judging a
// media packet does not allocate a fresh number string per message.
var ptLabels = func() (t [128]string) {
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return
}()

// Comply applies the five criteria to an RTP message. For RTP the
// paper's "message type" is the payload type, and "attributes" are the
// RFC 8285 header-extension profile and its elements.
func (handler) Comply(dst []proto.Checked, m proto.Message, ts time.Time, s *proto.Session) []proto.Checked {
	p := m.RTP
	c := proto.Checked{
		Protocol:  proto.RTP,
		Type:      proto.TypeKey{Protocol: proto.RTP, Label: ptLabels[p.PayloadType&0x7f]},
		Bytes:     m.Length,
		Timestamp: ts,
	}
	ssrcs(s.Checker())[p.SSRC] = true
	c.Verdict = rtpVerdict(p)
	return append(dst, c)
}

// definedExtProfile reports whether an RTP header-extension profile is
// defined: 0xBEDE (one-byte form) or 0x1000-0x100F (two-byte form) per
// RFC 8285.
func definedExtProfile(profile uint16) bool {
	return profile == rtp.ProfileOneByte ||
		profile&rtp.ProfileTwoByteMask == rtp.ProfileTwoByteBase
}

func rtpVerdict(p *rtp.Packet) proto.Verdict {
	// Criterion 1: payload type. Every value 0-127 is either statically
	// assigned (RFC 3551) or in the dynamic range, so the payload type
	// itself never fails; the version field is the type-bearing header
	// field and the DPI guarantees version 2.

	// Criterion 2: header fields. The CSRC count and padding are
	// structurally verified by the decoder; a padding length that
	// consumed the entire payload would have failed decode.

	// Criterion 3: header extension profile and element IDs.
	if p.Extension != nil {
		ext := p.Extension
		if !definedExtProfile(ext.Profile) {
			// FaceTime's 0x8001/0x8500/0x8D00 and Discord's
			// 0x0084-0xFBD2 profiles.
			return proto.Fail(proto.CritAttrType, "header extension profile %#04x is not defined by RFC 8285", ext.Profile)
		}
		for _, el := range ext.Elements {
			if ext.Profile == rtp.ProfileOneByte {
				if el.ID == 0 {
					// Discord's ID=0 elements with payload bytes: an ID
					// of 0 is padding and must not carry a length.
					return proto.Fail(proto.CritAttrType, "one-byte extension element with reserved ID 0 carries %d payload bytes", len(el.Payload))
				}
				if el.ID == 15 {
					return proto.Fail(proto.CritAttrType, "one-byte extension element uses reserved ID 15")
				}
			}
		}
		// Criterion 4: element structure must parse within the declared
		// extension length.
		if !ext.ParseOK {
			return proto.Fail(proto.CritAttrValue, "header extension elements overrun the declared extension length")
		}
	}

	// Criterion 5: sequence continuity is enforced during extraction;
	// no additional per-message semantic rule applies here.
	return proto.Ok()
}

// Observe marks the message as media-plane and reports its SSRC for the
// behavioural-findings scanners.
func (handler) Observe(m proto.Message, o *proto.Observation) {
	o.MediaMessage = true
	o.SSRC = m.RTP.SSRC
	o.HasSSRC = true
}
